package core

import (
	"math/rand"
	"strings"
	"testing"

	"dspaddr/internal/merge"
	"dspaddr/internal/model"
	"dspaddr/internal/pathcover"
)

func agu(k, m int) model.AGUSpec { return model.AGUSpec{Registers: k, ModifyRange: m} }

func TestAllocatePaperExampleUnconstrained(t *testing.T) {
	res, err := Allocate(model.PaperExample(), Config{AGU: agu(4, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualRegisters != 2 {
		t.Fatalf("K~ = %d, want 2", res.VirtualRegisters)
	}
	if res.Merged {
		t.Fatal("K~ <= K must not merge")
	}
	if res.Cost != 0 {
		t.Fatalf("cost = %d, want 0", res.Cost)
	}
	if err := res.Assignment.Validate(res.Pattern); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatePaperExampleConstrained(t *testing.T) {
	res, err := Allocate(model.PaperExample(), Config{AGU: agu(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Merged {
		t.Fatal("K=1 < K~=2 must merge")
	}
	if res.Assignment.Registers() != 1 {
		t.Fatalf("registers = %d, want 1", res.Assignment.Registers())
	}
	if res.Cost < 1 {
		t.Fatalf("cost = %d, merging must cost at least 1", res.Cost)
	}
}

func TestAllocateInterIteration(t *testing.T) {
	res, err := Allocate(model.PaperExample(), Config{AGU: agu(8, 1), InterIteration: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CoverZeroCost {
		t.Fatal("stride 1 <= M guarantees a zero-cost wrap cover exists")
	}
	if res.Cost != 0 {
		t.Fatalf("cost = %d, want 0 with enough registers", res.Cost)
	}
	// Wrap-aware K~ is never below the intra-iteration K~.
	intra, err := Allocate(model.PaperExample(), Config{AGU: agu(8, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualRegisters < intra.VirtualRegisters {
		t.Fatalf("wrap K~ %d < intra K~ %d", res.VirtualRegisters, intra.VirtualRegisters)
	}
}

func TestAllocateValidatesInputs(t *testing.T) {
	if _, err := Allocate(model.Pattern{}, Config{AGU: agu(1, 1)}); err == nil {
		t.Fatal("empty pattern accepted")
	}
	if _, err := Allocate(model.PaperExample(), Config{AGU: agu(0, 1)}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := Allocate(model.PaperExample(), Config{AGU: agu(1, -1)}); err == nil {
		t.Fatal("M=-1 accepted")
	}
}

func TestAllocateCustomStrategy(t *testing.T) {
	pat := model.PaperExample()
	greedy, err := Allocate(pat, Config{AGU: agu(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Allocate(pat, Config{AGU: agu(1, 1), Strategy: merge.Naive{}})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Cost > naive.Cost {
		t.Fatalf("greedy %d worse than naive %d on the paper example", greedy.Cost, naive.Cost)
	}
}

func TestAllocateCoverOptionsPropagate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	offs := make([]int, 30)
	for i := range offs {
		offs[i] = rng.Intn(13) - 6
	}
	pat := model.Pattern{Array: "A", Stride: 1, Offsets: offs}
	res, err := Allocate(pat, Config{
		AGU:            agu(2, 1),
		InterIteration: true,
		CoverOptions:   &pathcover.Options{NodeBudget: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(pat); err != nil {
		t.Fatal(err)
	}
}

func TestResultReport(t *testing.T) {
	res, err := Allocate(model.PaperExample(), Config{AGU: agu(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	for _, want := range []string{"K~ = 2", "merged down to 1", "unit-cost address computation"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	un, err := Allocate(model.PaperExample(), Config{AGU: agu(4, 1), InterIteration: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(un.Report(), "not needed") {
		t.Error("unconstrained report should say phase 2 not needed")
	}
	if !strings.Contains(un.Report(), "wrap included") {
		t.Error("inter-iteration report should name the objective")
	}
}

func TestAllocateCostMatchesAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(20)
		offs := make([]int, n)
		for i := range offs {
			offs[i] = rng.Intn(15) - 7
		}
		pat := model.Pattern{Array: "A", Stride: 1, Offsets: offs}
		cfg := Config{AGU: agu(1+rng.Intn(4), rng.Intn(3)), InterIteration: rng.Intn(2) == 0}
		res, err := Allocate(pat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := res.Assignment.Cost(pat, cfg.AGU.ModifyRange, cfg.InterIteration)
		if res.Cost != want {
			t.Fatalf("Cost %d != recomputed %d", res.Cost, want)
		}
		if err := res.Assignment.Validate(pat); err != nil {
			t.Fatal(err)
		}
		if res.Assignment.Registers() > cfg.AGU.Registers {
			t.Fatalf("used %d > K=%d registers", res.Assignment.Registers(), cfg.AGU.Registers)
		}
	}
}

func fixtureLoop() model.LoopSpec {
	return model.LoopSpec{
		Var: "i", From: 2, To: 100, Stride: 1,
		Accesses: []model.Access{
			{Array: "A", Offset: 1},
			{Array: "B", Offset: 0},
			{Array: "A", Offset: 0},
			{Array: "B", Offset: 4},
			{Array: "A", Offset: 2},
			{Array: "B", Offset: 0},
			{Array: "A", Offset: -1},
		},
	}
}

func TestAllocateLoopMultiArray(t *testing.T) {
	res, err := AllocateLoop(fixtureLoop(), Config{AGU: agu(4, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arrays) != 2 {
		t.Fatalf("arrays = %d, want 2", len(res.Arrays))
	}
	if res.RegistersUsed > 4 {
		t.Fatalf("used %d registers, budget 4", res.RegistersUsed)
	}
	// Global register ids must be unique across arrays.
	seen := map[int]bool{}
	for _, aa := range res.Arrays {
		for _, g := range aa.GlobalRegisters {
			if seen[g] {
				t.Fatalf("global register %d assigned twice", g)
			}
			seen[g] = true
		}
		if err := aa.Result.Assignment.Validate(aa.Result.Pattern); err != nil {
			t.Fatal(err)
		}
	}
	sum := 0
	for _, aa := range res.Arrays {
		sum += aa.Result.Cost
	}
	if sum != res.TotalCost {
		t.Fatalf("TotalCost %d != sum %d", res.TotalCost, sum)
	}
}

func TestAllocateLoopTooFewRegisters(t *testing.T) {
	if _, err := AllocateLoop(fixtureLoop(), Config{AGU: agu(1, 1)}); err == nil {
		t.Fatal("two arrays cannot share one register")
	}
}

func TestAllocateLoopBudgetMonotone(t *testing.T) {
	loop := fixtureLoop()
	var prev int
	for k := 2; k <= 6; k++ {
		res, err := AllocateLoop(loop, Config{AGU: agu(k, 1)})
		if err != nil {
			t.Fatal(err)
		}
		if k > 2 && res.TotalCost > prev {
			t.Fatalf("cost increased from %d to %d when adding a register (K=%d)", prev, res.TotalCost, k)
		}
		prev = res.TotalCost
	}
}

func TestAllocateLoopValidation(t *testing.T) {
	if _, err := AllocateLoop(model.LoopSpec{Stride: 1}, Config{AGU: agu(2, 1)}); err == nil {
		t.Fatal("empty loop accepted")
	}
	if _, err := AllocateLoop(fixtureLoop(), Config{AGU: agu(2, -1)}); err == nil {
		t.Fatal("bad AGU accepted")
	}
}

func TestAllocateLoopBackMaps(t *testing.T) {
	loop := fixtureLoop()
	res, err := AllocateLoop(loop, Config{AGU: agu(4, 1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, aa := range res.Arrays {
		for k, li := range aa.LoopAccess {
			if loop.Accesses[li].Array != aa.Result.Pattern.Array {
				t.Fatalf("back-map %d -> %d crosses arrays", k, li)
			}
			if loop.Accesses[li].Offset != aa.Result.Pattern.Offsets[k] {
				t.Fatalf("back-map %d -> %d offset mismatch", k, li)
			}
		}
	}
}

// The marginal-cost register distribution must never lose to splitting
// the budget evenly across arrays.
func TestAllocateLoopDistributionBeatsEvenSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	arrays := []string{"A", "B"}
	for trial := 0; trial < 40; trial++ {
		nAcc := 4 + rng.Intn(10)
		accs := make([]model.Access, nAcc)
		for i := range accs {
			accs[i] = model.Access{Array: arrays[rng.Intn(2)], Offset: rng.Intn(13) - 6}
		}
		accs[0].Array, accs[1].Array = "A", "B"
		loop := model.LoopSpec{Var: "i", From: 0, To: 20, Stride: 1, Accesses: accs}
		k := 4
		res, err := AllocateLoop(loop, Config{AGU: agu(k, 1)})
		if err != nil {
			t.Fatal(err)
		}
		// Even split: K/2 registers per array.
		even := 0
		pats, _ := loop.Patterns()
		for _, pat := range pats {
			sub, err := Allocate(pat, Config{AGU: agu(k/2, 1)})
			if err != nil {
				t.Fatal(err)
			}
			even += sub.Cost
		}
		if res.TotalCost > even {
			t.Fatalf("marginal distribution cost %d worse than even split %d (loop %+v)",
				res.TotalCost, even, loop)
		}
	}
}
