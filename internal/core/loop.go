package core

import (
	"context"
	"fmt"

	"dspaddr/internal/merge"
	"dspaddr/internal/model"
	"dspaddr/internal/pathcover"
)

// ArrayAllocation is the per-array slice of a loop allocation.
type ArrayAllocation struct {
	// Result is the single-array allocation outcome, computed with the
	// register budget the loop-level distribution granted this array.
	Result *Result
	// GlobalRegisters maps the array-local register index r to the
	// loop-global physical register GlobalRegisters[r].
	GlobalRegisters []int
	// LoopAccess maps pattern position k back to the index of the
	// originating access in LoopSpec.Accesses.
	LoopAccess []int
}

// LoopResult allocates a whole loop, possibly referencing several
// arrays. Address registers cannot be shared across arrays (their
// address streams interleave arbitrarily), so the K physical registers
// are distributed over the arrays by marginal cost analysis.
type LoopResult struct {
	// Loop is the allocated loop.
	Loop model.LoopSpec
	// Arrays holds one allocation per referenced array, in
	// first-appearance order.
	Arrays []ArrayAllocation
	// TotalCost is the summed unit-cost address computations per
	// iteration.
	TotalCost int
	// RegistersUsed is the number of physical registers consumed.
	RegistersUsed int
}

// AllocateLoop allocates address registers for every array accessed by
// the loop, with a transient solver. Each array requires at least one
// private register; the remaining budget is assigned greedily to the
// array with the largest marginal cost reduction, then each array is
// allocated with its final budget.
func AllocateLoop(loop model.LoopSpec, cfg Config) (*LoopResult, error) {
	return AllocateLoopContext(context.Background(), loop, cfg)
}

// AllocateLoopContext is AllocateLoop with cooperative cancellation
// (see Solver.Allocate).
func AllocateLoopContext(ctx context.Context, loop model.LoopSpec, cfg Config) (*LoopResult, error) {
	return NewSolver().AllocateLoop(ctx, loop, cfg)
}

// AllocateLoop is AllocateLoop on the solver's reusable workspaces.
// Covers are consumed array by array (the phase-1 scratch is recycled
// between arrays), so only the small cost curves are retained across
// the budget distribution.
func (s *Solver) AllocateLoop(ctx context.Context, loop model.LoopSpec, cfg Config) (*LoopResult, error) {
	cfg = cfg.withDefaults()
	if err := loop.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.AGU.Validate(); err != nil {
		return nil, err
	}
	pats, back := loop.Patterns()
	nArrays := len(pats)
	if cfg.AGU.Registers < nArrays {
		return nil, fmt.Errorf("core: loop references %d arrays but AGU has only %d address registers", nArrays, cfg.AGU.Registers)
	}

	// Per-array phase 1 plus the cost curve cost(k) for k = 1..K~.
	kts := make([]int, nArrays)      // kts[a] = K~ of array a
	curves := make([][]int, nArrays) // curves[a][k-1] = cost with k registers
	for a, pat := range pats {
		if err := s.dg.Rebuild(pat, cfg.AGU.ModifyRange); err != nil {
			return nil, err
		}
		cover, err := pathcover.MinCoverCtx(ctx, &s.dg, cfg.InterIteration, cfg.CoverOptions, &s.cover)
		if err != nil {
			return nil, err
		}
		kt := cover.K()
		curve := make([]int, kt)
		curve[kt-1] = cover.Assignment().Cost(pat, cfg.AGU.ModifyRange, cfg.InterIteration)
		for k := 1; k < kt; k++ {
			asg, err := merge.ReduceContext(ctx, cfg.Strategy, cover.Paths, pat, cfg.AGU.ModifyRange, cfg.InterIteration, k, &s.merge)
			if err != nil {
				if ctx.Err() != nil {
					return nil, err
				}
				return nil, fmt.Errorf("core: cost curve for array %q at K=%d: %w", pat.Array, k, err)
			}
			curve[k-1] = asg.Cost(pat, cfg.AGU.ModifyRange, cfg.InterIteration)
		}
		kts[a] = kt
		curves[a] = curve
	}

	// Distribute the budget: start at one register per array, then give
	// each spare register to the array whose cost drops the most.
	budget := make([]int, nArrays)
	for a := range budget {
		budget[a] = 1
	}
	spare := cfg.AGU.Registers - nArrays
	costAt := func(a, k int) int {
		if k >= len(curves[a]) {
			return curves[a][len(curves[a])-1]
		}
		return curves[a][k-1]
	}
	for ; spare > 0; spare-- {
		best, bestGain := -1, 0
		for a := range budget {
			if budget[a] >= kts[a] {
				continue // more registers cannot help this array
			}
			gain := costAt(a, budget[a]) - costAt(a, budget[a]+1)
			if best == -1 || gain > bestGain {
				best, bestGain = a, gain
			}
		}
		if best == -1 {
			break // every array already at its K~
		}
		budget[best]++
	}

	// Final per-array allocation with the granted budgets.
	out := &LoopResult{Loop: loop}
	nextReg := 0
	for a, pat := range pats {
		sub := cfg
		sub.AGU.Registers = budget[a]
		res, err := s.Allocate(ctx, pat, sub)
		if err != nil {
			return nil, err
		}
		used := res.Assignment.Registers()
		globals := make([]int, used)
		for r := range globals {
			globals[r] = nextReg
			nextReg++
		}
		out.Arrays = append(out.Arrays, ArrayAllocation{
			Result:          res,
			GlobalRegisters: globals,
			LoopAccess:      back[a],
		})
		out.TotalCost += res.Cost
	}
	out.RegistersUsed = nextReg
	return out, nil
}
