package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"none", "none"},
		{"delay=20ms:4", "delay=20ms:4"},
		{"delay=5ms", "delay=5ms:1"},
		{"error=128", "error=128"},
		{"ttl-div=100", "ttl-div=100"},
		{"delay=20ms:4,error=128,ttl-div=10", "delay=20ms:4,error=128,ttl-div=10"},
		{" delay=1ms:2 , error=3 ", "delay=1ms:2,error=3"},
		{"wal-write-error=64", "wal-write-error=64"},
		{"wal-fsync-delay=5ms:8", "wal-fsync-delay=5ms:8"},
		{"wal-fsync-delay=5ms", "wal-fsync-delay=5ms:1"},
		{"error=128,wal-write-error=64,wal-fsync-delay=2ms:4", "error=128,wal-fsync-delay=2ms:4,wal-write-error=64"},
		{"resp-delay=300ms", "resp-delay=300ms:1"},
		{"resp-delay=50ms:4", "resp-delay=50ms:4"},
		{"blackhole=16", "blackhole=16"},
		{"resp-delay=300ms:1,blackhole=8,delay=1ms", "blackhole=8,delay=1ms:1,resp-delay=300ms:1"},
	}
	for _, c := range cases {
		inj, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if got := inj.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.spec, got, c.want)
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, spec := range []string{
		"", "delay", "delay=", "delay=-5ms", "delay=5ms:0", "delay=5ms:x",
		"error=0", "error=-1", "error=x", "ttl-div=0", "bogus=1", "delay=5ms,,",
		"wal-write-error=0", "wal-write-error=x", "wal-fsync-delay=", "wal-fsync-delay=5ms:0",
		"resp-delay=", "resp-delay=-1ms", "resp-delay=5ms:0", "blackhole=0", "blackhole=x",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
}

// TestErrorSchedule pins the counter-based determinism: error=4 fires
// on exactly every 4th call.
func TestErrorSchedule(t *testing.T) {
	inj, err := Parse("error=4")
	if err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 12; i++ {
		if err := inj.BeforeSolve(context.Background()); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call %d: unexpected error %v", i, err)
			}
			fired = append(fired, i)
		}
	}
	want := []int{4, 8, 12}
	if len(fired) != len(want) {
		t.Fatalf("errors fired on calls %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("errors fired on calls %v, want %v", fired, want)
		}
	}
	if st := inj.Snapshot(); st.Errors != 3 || st.Calls != 12 {
		t.Errorf("snapshot %+v, want 3 errors over 12 calls", st)
	}
}

// TestWALWriteErrorSchedule pins the WAL append fault: independent
// counter, deterministic every-Nth firing, tracked in the snapshot.
func TestWALWriteErrorSchedule(t *testing.T) {
	inj, err := Parse("wal-write-error=3")
	if err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 9; i++ {
		if err := inj.BeforeWALWrite(); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("wal write %d: unexpected error %v", i, err)
			}
			fired = append(fired, i)
		}
	}
	want := []int{3, 6, 9}
	if len(fired) != len(want) {
		t.Fatalf("wal write errors fired on %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("wal write errors fired on %v, want %v", fired, want)
		}
	}
	// The solve-side error counter must not see WAL traffic.
	if st := inj.Snapshot(); st.WALWriteErrors != 3 || st.WALWrites != 9 || st.Errors != 0 {
		t.Errorf("snapshot %+v, want 3 wal write errors over 9 wal writes and 0 solve errors", st)
	}
}

// TestWALFsyncDelaySchedule verifies the fsync stall fires on its own
// counter and is recorded.
func TestWALFsyncDelaySchedule(t *testing.T) {
	inj, err := Parse("wal-fsync-delay=1ms:2")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 4; i++ {
		inj.WALFsyncDelay()
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("4 fsyncs with delay=1ms:2 took %v, want >= 2ms", elapsed)
	}
	if st := inj.Snapshot(); st.WALFsyncDelays != 2 {
		t.Errorf("snapshot %+v, want 2 wal fsync delays", st)
	}
}

// TestDelayHonorsContext asserts an injected stall unwinds as soon as
// the solve context is canceled — fault injection must not defeat
// cooperative cancellation.
func TestDelayHonorsContext(t *testing.T) {
	inj, err := Parse("delay=10s")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := inj.BeforeSolve(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("BeforeSolve = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("injected delay ignored cancellation (%v)", elapsed)
	}
}

// TestRespDelaySchedule pins the HTTP response stall: its own counter,
// deterministic every-Nth firing, interruptible by the request ctx.
func TestRespDelaySchedule(t *testing.T) {
	inj, err := Parse("resp-delay=1ms:2")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 4; i++ {
		if err := inj.BeforeResponse(context.Background()); err != nil {
			t.Fatalf("response %d: %v", i+1, err)
		}
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("4 responses with resp-delay=1ms:2 took %v, want >= 2ms", elapsed)
	}
	if st := inj.Snapshot(); st.RespDelays != 2 || st.RespCalls != 4 || st.Delays != 0 {
		t.Errorf("snapshot %+v, want 2 resp delays over 4 resp calls and 0 solve delays", st)
	}

	// A long stall unwinds the moment the request context dies.
	slow, err := Parse("resp-delay=10s")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start = time.Now()
	if err := slow.BeforeResponse(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("BeforeResponse = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("resp-delay ignored cancellation (%v)", elapsed)
	}
}

// TestBlackholeHoldsUntilCtxDeath verifies the blackhole parks the
// request and releases only on context death.
func TestBlackholeHoldsUntilCtxDeath(t *testing.T) {
	inj, err := Parse("blackhole=2")
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.BeforeResponse(context.Background()); err != nil {
		t.Fatalf("first response should pass: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := inj.BeforeResponse(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blackholed response = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("blackhole released after %v, want to hold until ctx death", elapsed)
	}
	if st := inj.Snapshot(); st.Blackholes != 1 {
		t.Errorf("snapshot %+v, want 1 blackhole", st)
	}
}

func TestTTLDivision(t *testing.T) {
	inj, err := Parse("ttl-div=100")
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.TTL(15 * time.Minute); got != 9*time.Second {
		t.Errorf("TTL(15m) with div 100 = %v, want 9s", got)
	}
	// Floored so results stay fetchable at least briefly.
	if got := inj.TTL(10 * time.Millisecond); got != time.Millisecond {
		t.Errorf("TTL floor = %v, want 1ms", got)
	}
	idle, _ := Parse("none")
	if got := idle.TTL(time.Minute); got != time.Minute {
		t.Errorf("idle injector changed TTL: %v", got)
	}
}

func TestRearm(t *testing.T) {
	inj, err := Parse("none")
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.BeforeSolve(context.Background()); err != nil {
		t.Fatalf("idle injector errored: %v", err)
	}
	if err := inj.Rearm("error=1"); err != nil {
		t.Fatal(err)
	}
	if err := inj.BeforeSolve(context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("rearmed injector did not fire: %v", err)
	}
	if err := inj.Rearm("not-a-spec"); err == nil {
		t.Fatal("Rearm accepted a bad spec")
	}
	// A failed rearm leaves the old schedule in place.
	if got := inj.String(); got != "error=1" {
		t.Errorf("schedule after failed rearm: %q", got)
	}
}
