// Package faults is the opt-in fault-injection layer behind the soak
// and chaos harness (cmd/rcasoak). An Injector can stretch solve
// latency, force solver errors and accelerate result-store expiry —
// the failure modes a long-running rcaserve must absorb without
// violating its invariants — while staying completely out of the
// production hot path: the engine and job manager hold a *Injector in
// their options structs, a nil pointer means injection is compiled
// down to one pointer compare, and an armed injector costs one atomic
// increment per hook site.
//
// Injection is counter-based, not probabilistic: "every Nth call"
// from an atomic counter is deterministic under a fixed op sequence,
// race-free without locks, and reproducible across soak runs with the
// same seed — a flaky fault schedule would make oracle failures
// unreproducible, which defeats the point of the harness.
//
// The textual spec form ("delay=20ms:4,error=128,ttl-div=100") is
// what rcaserve's -faults flag and /debug/soak endpoint accept; see
// Parse. The special spec "none" arms an injector that injects
// nothing, which soak builds use to expose the debug endpoint without
// perturbing the workload.
package faults

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected is the forced solve failure. Callers that want to
// distinguish injected faults from organic failures (the soak oracle
// does) match on this sentinel or on its message.
var ErrInjected = errors.New("faults: injected error")

// Injector holds the armed fault schedule. All fields are atomics so
// a debug endpoint can re-arm a live injector while workers read it;
// the zero value injects nothing.
type Injector struct {
	// delayNanos is the injected solve latency; delayEvery fires it on
	// every Nth BeforeSolve call (0 = off, 1 = every call).
	delayNanos atomic.Int64
	delayEvery atomic.Int64
	// errorEvery forces ErrInjected on every Nth BeforeSolve call
	// (0 = off). Error and delay counters are independent, so a call
	// can both stall and fail.
	errorEvery atomic.Int64
	// ttlDiv divides the job result store's TTL at construction time
	// (0 or 1 = off). Unlike the solve hooks it cannot be re-armed
	// live: the store's expiry horizon is fixed when the manager is
	// built.
	ttlDiv atomic.Int64

	// walWriteEvery forces a write-ahead-log append failure on every
	// Nth BeforeWALWrite call (0 = off); walFsyncDelayNanos and
	// walFsyncEvery stretch every Nth WAL fsync, modeling a disk whose
	// write cache is flushing. Separate counters from the solve hooks,
	// so the WAL fault schedule is deterministic regardless of solve
	// traffic.
	walWriteEvery      atomic.Int64
	walFsyncDelayNanos atomic.Int64
	walFsyncEvery      atomic.Int64

	// respDelayNanos/respDelayEvery stretch every Nth HTTP response
	// (the gray-failure fault: the process is alive, /healthz answers,
	// but serving latency is an order of magnitude up); blackholeEvery
	// holds every Nth request open until its context dies, modeling a
	// connection that never answers. Both hook BeforeResponse, counted
	// separately from the solve hooks.
	respDelayNanos atomic.Int64
	respDelayEvery atomic.Int64
	blackholeEvery atomic.Int64

	calls  atomic.Uint64 // BeforeSolve invocations
	delays atomic.Uint64 // injected latencies fired
	errs   atomic.Uint64 // injected errors fired

	walWrites     atomic.Uint64 // BeforeWALWrite invocations
	walWriteErrs  atomic.Uint64 // injected WAL append failures
	walFsyncCalls atomic.Uint64 // WALFsyncDelay invocations
	walDelays     atomic.Uint64 // injected WAL fsync stalls

	respCalls  atomic.Uint64 // BeforeResponse invocations
	respDelays atomic.Uint64 // injected response stalls fired
	blackholes atomic.Uint64 // requests held until ctx death
}

// Parse builds an injector from a comma-separated spec:
//
//	delay=20ms:4          inject 20ms of solve latency on every 4th solve
//	delay=5ms             inject 5ms on every solve
//	error=128             force an error on every 128th solve
//	ttl-div=100           divide the async result TTL by 100
//	wal-write-error=64    fail every 64th WAL append
//	wal-fsync-delay=5ms:8 stall every 8th WAL fsync by 5ms
//	resp-delay=300ms      stall every HTTP response by 300ms (gray failure)
//	resp-delay=50ms:4     stall every 4th HTTP response by 50ms
//	blackhole=16          hold every 16th request open until its ctx dies
//	none                  arm the injector with nothing scheduled
//
// An empty spec is an error — callers express "no injection" by not
// arming an injector at all (nil), or with the explicit "none".
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, errors.New("faults: empty spec (use \"none\" for an armed but idle injector)")
	}
	inj := &Injector{}
	if spec == "none" {
		return inj, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("faults: bad clause %q (want key=value)", part)
		}
		switch key {
		case "delay":
			durStr, everyStr, hasEvery := strings.Cut(val, ":")
			d, err := time.ParseDuration(durStr)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("faults: bad delay %q", val)
			}
			every := 1
			if hasEvery {
				every, err = strconv.Atoi(everyStr)
				if err != nil || every < 1 {
					return nil, fmt.Errorf("faults: bad delay period %q", everyStr)
				}
			}
			inj.delayNanos.Store(int64(d))
			inj.delayEvery.Store(int64(every))
		case "error":
			every, err := strconv.Atoi(val)
			if err != nil || every < 1 {
				return nil, fmt.Errorf("faults: bad error period %q", val)
			}
			inj.errorEvery.Store(int64(every))
		case "ttl-div":
			div, err := strconv.Atoi(val)
			if err != nil || div < 1 {
				return nil, fmt.Errorf("faults: bad ttl divisor %q", val)
			}
			inj.ttlDiv.Store(int64(div))
		case "wal-write-error":
			every, err := strconv.Atoi(val)
			if err != nil || every < 1 {
				return nil, fmt.Errorf("faults: bad wal-write-error period %q", val)
			}
			inj.walWriteEvery.Store(int64(every))
		case "wal-fsync-delay":
			durStr, everyStr, hasEvery := strings.Cut(val, ":")
			d, err := time.ParseDuration(durStr)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("faults: bad wal-fsync-delay %q", val)
			}
			every := 1
			if hasEvery {
				every, err = strconv.Atoi(everyStr)
				if err != nil || every < 1 {
					return nil, fmt.Errorf("faults: bad wal-fsync-delay period %q", everyStr)
				}
			}
			inj.walFsyncDelayNanos.Store(int64(d))
			inj.walFsyncEvery.Store(int64(every))
		case "resp-delay":
			durStr, everyStr, hasEvery := strings.Cut(val, ":")
			d, err := time.ParseDuration(durStr)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("faults: bad resp-delay %q", val)
			}
			every := 1
			if hasEvery {
				every, err = strconv.Atoi(everyStr)
				if err != nil || every < 1 {
					return nil, fmt.Errorf("faults: bad resp-delay period %q", everyStr)
				}
			}
			inj.respDelayNanos.Store(int64(d))
			inj.respDelayEvery.Store(int64(every))
		case "blackhole":
			every, err := strconv.Atoi(val)
			if err != nil || every < 1 {
				return nil, fmt.Errorf("faults: bad blackhole period %q", val)
			}
			inj.blackholeEvery.Store(int64(every))
		default:
			return nil, fmt.Errorf("faults: unknown clause key %q", key)
		}
	}
	return inj, nil
}

// Rearm replaces the live solve-hook schedule with a freshly parsed
// spec. ttl-div in the new spec is recorded for display but has no
// effect on an already-built store; counters keep accumulating.
func (inj *Injector) Rearm(spec string) error {
	next, err := Parse(spec)
	if err != nil {
		return err
	}
	inj.delayNanos.Store(next.delayNanos.Load())
	inj.delayEvery.Store(next.delayEvery.Load())
	inj.errorEvery.Store(next.errorEvery.Load())
	inj.ttlDiv.Store(next.ttlDiv.Load())
	inj.walWriteEvery.Store(next.walWriteEvery.Load())
	inj.walFsyncDelayNanos.Store(next.walFsyncDelayNanos.Load())
	inj.walFsyncEvery.Store(next.walFsyncEvery.Load())
	inj.respDelayNanos.Store(next.respDelayNanos.Load())
	inj.respDelayEvery.Store(next.respDelayEvery.Load())
	inj.blackholeEvery.Store(next.blackholeEvery.Load())
	return nil
}

// BeforeSolve is the engine-side hook, called on the single-flight
// leader immediately before a real solve. It applies the scheduled
// latency (interruptible by ctx, so cancellation still frees the
// worker promptly) and then the scheduled forced error.
func (inj *Injector) BeforeSolve(ctx context.Context) error {
	n := inj.calls.Add(1)
	if every := inj.delayEvery.Load(); every > 0 && n%uint64(every) == 0 {
		if d := time.Duration(inj.delayNanos.Load()); d > 0 {
			inj.delays.Add(1)
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
	}
	if every := inj.errorEvery.Load(); every > 0 && n%uint64(every) == 0 {
		inj.errs.Add(1)
		return fmt.Errorf("%w (call %d)", ErrInjected, n)
	}
	return nil
}

// BeforeWALWrite is the write-ahead-log hook, called immediately
// before an append reaches the segment file. It returns ErrInjected
// on every Nth call when a wal-write-error clause is armed, modeling
// a full or failing disk; the caller must surface the failure to the
// submitter (the record was never durable).
func (inj *Injector) BeforeWALWrite() error {
	n := inj.walWrites.Add(1)
	if every := inj.walWriteEvery.Load(); every > 0 && n%uint64(every) == 0 {
		inj.walWriteErrs.Add(1)
		return fmt.Errorf("%w (wal write %d)", ErrInjected, n)
	}
	return nil
}

// WALFsyncDelay stalls the caller on every Nth WAL fsync when a
// wal-fsync-delay clause is armed — the "disk flushing its cache"
// fault that stretches the fsync tail without failing anything.
func (inj *Injector) WALFsyncDelay() {
	n := inj.walFsyncCalls.Add(1)
	if every := inj.walFsyncEvery.Load(); every > 0 && n%uint64(every) == 0 {
		if d := time.Duration(inj.walFsyncDelayNanos.Load()); d > 0 {
			inj.walDelays.Add(1)
			time.Sleep(d)
		}
	}
}

// BeforeResponse is the HTTP-serving hook, called at the top of every
// request before the handler runs. An armed blackhole clause parks the
// request until its context dies (client disconnect, forwarder hop
// timeout, server shutdown); an armed resp-delay clause stretches the
// response by the scheduled latency, interruptible the same way. The
// non-nil error is always the context's own, so callers can drop the
// request without writing a response the peer stopped waiting for.
func (inj *Injector) BeforeResponse(ctx context.Context) error {
	n := inj.respCalls.Add(1)
	if every := inj.blackholeEvery.Load(); every > 0 && n%uint64(every) == 0 {
		inj.blackholes.Add(1)
		<-ctx.Done()
		return ctx.Err()
	}
	if every := inj.respDelayEvery.Load(); every > 0 && n%uint64(every) == 0 {
		if d := time.Duration(inj.respDelayNanos.Load()); d > 0 {
			inj.respDelays.Add(1)
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
	}
	return nil
}

// TTL returns the store retention the manager should use: the
// configured TTL divided by the armed ttl-div, floored at 1ms so an
// aggressive divisor accelerates expiry without making results
// unfetchable the instant they finish.
func (inj *Injector) TTL(configured time.Duration) time.Duration {
	div := inj.ttlDiv.Load()
	if div <= 1 {
		return configured
	}
	d := configured / time.Duration(div)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// Stats is a snapshot of the injector's activity, exported by the
// debug endpoint so the soak harness can verify faults actually fired.
type Stats struct {
	Spec   string `json:"spec"`
	Calls  uint64 `json:"calls"`
	Delays uint64 `json:"delays"`
	Errors uint64 `json:"errors"`
	// WAL hook activity; zero unless wal-* clauses are armed and a
	// write-ahead log is running.
	WALWrites      uint64 `json:"walWrites"`
	WALWriteErrors uint64 `json:"walWriteErrors"`
	WALFsyncDelays uint64 `json:"walFsyncDelays"`
	// HTTP response hook activity; zero unless resp-delay or blackhole
	// clauses are armed.
	RespCalls  uint64 `json:"respCalls"`
	RespDelays uint64 `json:"respDelays"`
	Blackholes uint64 `json:"blackholes"`
}

// Snapshot reports the current schedule and counters.
func (inj *Injector) Snapshot() Stats {
	return Stats{
		Spec:           inj.String(),
		Calls:          inj.calls.Load(),
		Delays:         inj.delays.Load(),
		Errors:         inj.errs.Load(),
		WALWrites:      inj.walWrites.Load(),
		WALWriteErrors: inj.walWriteErrs.Load(),
		WALFsyncDelays: inj.walDelays.Load(),
		RespCalls:      inj.respCalls.Load(),
		RespDelays:     inj.respDelays.Load(),
		Blackholes:     inj.blackholes.Load(),
	}
}

// String renders the live schedule back in spec form.
func (inj *Injector) String() string {
	var parts []string
	if every := inj.delayEvery.Load(); every > 0 && inj.delayNanos.Load() > 0 {
		parts = append(parts, fmt.Sprintf("delay=%v:%d", time.Duration(inj.delayNanos.Load()), every))
	}
	if every := inj.errorEvery.Load(); every > 0 {
		parts = append(parts, fmt.Sprintf("error=%d", every))
	}
	if div := inj.ttlDiv.Load(); div > 1 {
		parts = append(parts, fmt.Sprintf("ttl-div=%d", div))
	}
	if every := inj.walWriteEvery.Load(); every > 0 {
		parts = append(parts, fmt.Sprintf("wal-write-error=%d", every))
	}
	if every := inj.walFsyncEvery.Load(); every > 0 && inj.walFsyncDelayNanos.Load() > 0 {
		parts = append(parts, fmt.Sprintf("wal-fsync-delay=%v:%d", time.Duration(inj.walFsyncDelayNanos.Load()), every))
	}
	if every := inj.respDelayEvery.Load(); every > 0 && inj.respDelayNanos.Load() > 0 {
		parts = append(parts, fmt.Sprintf("resp-delay=%v:%d", time.Duration(inj.respDelayNanos.Load()), every))
	}
	if every := inj.blackholeEvery.Load(); every > 0 {
		parts = append(parts, fmt.Sprintf("blackhole=%d", every))
	}
	if len(parts) == 0 {
		return "none"
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
