package model

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPaperExample(t *testing.T) {
	p := PaperExample()
	want := []int{1, 0, 2, -1, 1, 0, -2}
	if !reflect.DeepEqual(p.Offsets, want) {
		t.Fatalf("PaperExample offsets = %v, want %v", p.Offsets, want)
	}
	if p.Stride != 1 {
		t.Fatalf("PaperExample stride = %d, want 1", p.Stride)
	}
	if p.N() != 7 {
		t.Fatalf("PaperExample N = %d, want 7", p.N())
	}
}

func TestPatternDistance(t *testing.T) {
	p := PaperExample()
	tests := []struct {
		i, j, want int
	}{
		{0, 1, -1}, // A[i+1] -> A[i]
		{0, 2, 1},  // A[i+1] -> A[i+2]
		{2, 3, -3}, // A[i+2] -> A[i-1]
		{3, 6, -1}, // A[i-1] -> A[i-2]
		{1, 1, 0},
	}
	for _, tt := range tests {
		if got := p.Distance(tt.i, tt.j); got != tt.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", tt.i, tt.j, got, tt.want)
		}
	}
}

func TestPatternWrapDistance(t *testing.T) {
	p := PaperExample()
	// From a6 (offset 0) to a1 (offset 1) of the next iteration with
	// stride 1: distance 1+1-0 = 2.
	if got := p.WrapDistance(5, 0); got != 2 {
		t.Fatalf("WrapDistance(a6,a1) = %d, want 2", got)
	}
	// From a7 (offset -2) to a7 next iteration: -2+1-(-2) = 1.
	if got := p.WrapDistance(6, 6); got != 1 {
		t.Fatalf("WrapDistance(a7,a7) = %d, want 1", got)
	}
	p2 := Pattern{Stride: 4, Offsets: []int{0, 2}}
	if got := p2.WrapDistance(1, 0); got != 2 {
		t.Fatalf("WrapDistance stride-4 = %d, want 2", got)
	}
}

func TestTransitionCost(t *testing.T) {
	tests := []struct {
		d, m, want int
	}{
		{0, 0, 0}, {1, 0, 1}, {-1, 0, 1},
		{1, 1, 0}, {-1, 1, 0}, {2, 1, 1}, {-2, 1, 1},
		{3, 3, 0}, {4, 3, 1},
	}
	for _, tt := range tests {
		if got := TransitionCost(tt.d, tt.m); got != tt.want {
			t.Errorf("TransitionCost(%d,%d) = %d, want %d", tt.d, tt.m, got, tt.want)
		}
	}
}

func TestPatternValidate(t *testing.T) {
	if err := (Pattern{}).Validate(); err == nil {
		t.Fatal("empty pattern should not validate")
	}
	if err := PaperExample().Validate(); err != nil {
		t.Fatalf("paper example should validate: %v", err)
	}
}

func TestPatternString(t *testing.T) {
	got := PaperExample().String()
	want := "A: [+1 0 +2 -1 +1 0 -2] stride 1"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	anon := Pattern{Stride: 2, Offsets: []int{3}}
	if got := anon.String(); got != "<anon>: [+3] stride 2" {
		t.Fatalf("anon String() = %q", got)
	}
}

func TestOffsetSpanAndDistinct(t *testing.T) {
	p := PaperExample()
	min, max := p.OffsetSpan()
	if min != -2 || max != 2 {
		t.Fatalf("OffsetSpan = (%d,%d), want (-2,2)", min, max)
	}
	if got := p.DistinctOffsets(); !reflect.DeepEqual(got, []int{-2, -1, 0, 1, 2}) {
		t.Fatalf("DistinctOffsets = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("OffsetSpan on empty pattern should panic")
		}
	}()
	Pattern{}.OffsetSpan()
}

func TestLoopSpec(t *testing.T) {
	l := LoopSpec{
		Var: "i", From: 2, To: 10, Stride: 1,
		Accesses: []Access{
			{Array: "A", Offset: 1},
			{Array: "B", Offset: 0},
			{Array: "A", Offset: -1},
		},
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := l.Iterations(); got != 9 {
		t.Fatalf("Iterations = %d, want 9", got)
	}
	if got := l.Arrays(); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Fatalf("Arrays = %v", got)
	}
	pats, back := l.Patterns()
	if len(pats) != 2 {
		t.Fatalf("Patterns count = %d", len(pats))
	}
	if !reflect.DeepEqual(pats[0].Offsets, []int{1, -1}) {
		t.Fatalf("A offsets = %v", pats[0].Offsets)
	}
	if !reflect.DeepEqual(pats[1].Offsets, []int{0}) {
		t.Fatalf("B offsets = %v", pats[1].Offsets)
	}
	if !reflect.DeepEqual(back[0], []int{0, 2}) || !reflect.DeepEqual(back[1], []int{1}) {
		t.Fatalf("back maps = %v %v", back[0], back[1])
	}
}

func TestLoopSpecValidateErrors(t *testing.T) {
	if err := (LoopSpec{Stride: 0, Accesses: []Access{{}}}).Validate(); err == nil {
		t.Fatal("zero stride should fail")
	}
	if err := (LoopSpec{Stride: 1}).Validate(); err == nil {
		t.Fatal("no accesses should fail")
	}
}

func TestLoopSpecIterationsDegenerate(t *testing.T) {
	if got := (LoopSpec{From: 5, To: 4, Stride: 1}).Iterations(); got != 0 {
		t.Fatalf("empty range iterations = %d", got)
	}
	if got := (LoopSpec{From: 0, To: 10, Stride: 0}).Iterations(); got != 0 {
		t.Fatalf("zero stride iterations = %d", got)
	}
	if got := (LoopSpec{From: 0, To: 10, Stride: 3}).Iterations(); got != 4 {
		t.Fatalf("stride-3 iterations = %d, want 4", got)
	}
}

func TestAGUSpec(t *testing.T) {
	if err := (AGUSpec{Registers: 0, ModifyRange: 1}).Validate(); err == nil {
		t.Fatal("K=0 should fail")
	}
	if err := (AGUSpec{Registers: 1, ModifyRange: -1}).Validate(); err == nil {
		t.Fatal("M<0 should fail")
	}
	s := AGUSpec{Registers: 4, ModifyRange: 1}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := s.String(); got != "AGU{K=4, M=1}" {
		t.Fatalf("String = %q", got)
	}
}

func TestPathCostPaperPath(t *testing.T) {
	p := PaperExample()
	// The paper's example path (a1,a3,a5,a6) is zero-cost
	// intra-iteration with M=1 and its wrap transition costs 1.
	path := Path{0, 2, 4, 5}
	if got := path.Cost(p, 1, false); got != 0 {
		t.Fatalf("intra cost = %d, want 0", got)
	}
	if got := path.Cost(p, 1, true); got != 1 {
		t.Fatalf("wrap cost = %d, want 1", got)
	}
}

func TestPathMerge(t *testing.T) {
	// Paper example: (a1,a4,a6) ⊕ (a3,a5) = (a1,a3,a4,a5,a6).
	p1 := Path{0, 3, 5}
	p2 := Path{2, 4}
	got := p1.Merge(p2)
	want := Path{0, 2, 3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Merge = %v, want %v", got, want)
	}
	// Merge must be symmetric for disjoint paths.
	if got2 := p2.Merge(p1); !reflect.DeepEqual(got2, want) {
		t.Fatalf("reverse Merge = %v, want %v", got2, want)
	}
	if got := (Path{}).Merge(Path{1}); !reflect.DeepEqual(got, Path{1}) {
		t.Fatalf("empty merge = %v", got)
	}
}

func TestPathString(t *testing.T) {
	if got := (Path{0, 2, 4}).String(); got != "(a1,a3,a5)" {
		t.Fatalf("Path.String = %q", got)
	}
}

func TestPathIsOrdered(t *testing.T) {
	if !(Path{0, 1, 5}).IsOrdered() {
		t.Fatal("increasing path should be ordered")
	}
	if (Path{0, 0}).IsOrdered() {
		t.Fatal("duplicate should not be ordered")
	}
	if (Path{3, 1}).IsOrdered() {
		t.Fatal("decreasing should not be ordered")
	}
}

func TestAssignmentValidate(t *testing.T) {
	p := PaperExample()
	good := Assignment{Paths: []Path{{0, 2, 4, 5}, {1, 3, 6}}}
	if err := good.Validate(p); err != nil {
		t.Fatalf("good assignment rejected: %v", err)
	}
	bad := []Assignment{
		{Paths: []Path{{0, 2}, {1, 2, 3, 4, 5, 6}}}, // duplicate 2
		{Paths: []Path{{0, 1, 2, 3, 4, 5}}},         // missing 6
		{Paths: []Path{{0, 2, 1}, {3, 4, 5, 6}}},    // unordered
		{Paths: []Path{{}, {0, 1, 2, 3, 4, 5, 6}}},  // empty path
		{Paths: []Path{{0, 1, 2, 3, 4, 5, 7}}},      // out of range
	}
	for i, a := range bad {
		if err := a.Validate(p); err == nil {
			t.Errorf("bad assignment %d accepted", i)
		}
	}
}

func TestAssignmentCost(t *testing.T) {
	p := PaperExample()
	// R0=(a1,a3,a5,a6): zero intra cost. R1=(a2,a4,a7): 0->-1 (ok),
	// -1->-2 (ok): zero intra cost. Total zero with wrap off.
	a := Assignment{Paths: []Path{{0, 2, 4, 5}, {1, 3, 6}}}
	if got := a.Cost(p, 1, false); got != 0 {
		t.Fatalf("cost = %d, want 0", got)
	}
	// With wrap: R0 wrap 1+1-0=2 (cost 1); R1 wrap 0+1-(-2)=3 (cost 1).
	if got := a.Cost(p, 1, true); got != 2 {
		t.Fatalf("wrap cost = %d, want 2", got)
	}
}

func TestAssignmentRegisterOf(t *testing.T) {
	a := Assignment{Paths: []Path{{0, 2}, {1}}}
	got := a.RegisterOf(4)
	want := []int{0, 1, 0, -1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RegisterOf = %v, want %v", got, want)
	}
}

func TestAssignmentNormalizeCloneString(t *testing.T) {
	a := Assignment{Paths: []Path{{3, 4}, {0, 1}}}
	c := a.Clone()
	a.Normalize()
	if a.Paths[0][0] != 0 {
		t.Fatalf("Normalize did not sort: %v", a)
	}
	// Clone must be unaffected by mutation of the original.
	a.Paths[0][0] = 99
	if c.Paths[1][0] != 0 {
		t.Fatalf("Clone aliases original: %v", c)
	}
	if got := (Assignment{Paths: []Path{{0}, {1, 2}}}).String(); got != "R0=(a1) R1=(a2,a3)" {
		t.Fatalf("String = %q", got)
	}
}

func TestSingletonAssignment(t *testing.T) {
	p := PaperExample()
	a := SingletonAssignment(p.N())
	if err := a.Validate(p); err != nil {
		t.Fatalf("singleton invalid: %v", err)
	}
	if a.Registers() != 7 {
		t.Fatalf("Registers = %d", a.Registers())
	}
	if got := a.Cost(p, 1, false); got != 0 {
		t.Fatalf("singleton intra cost = %d, want 0", got)
	}
}

// Property: Merge preserves the multiset of indices and ordering.
func TestPathMergeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		// Build two disjoint ordered paths from raw.
		seen := map[int]bool{}
		var p, q Path
		for k, v := range raw {
			i := int(v)
			if seen[i] {
				continue
			}
			seen[i] = true
			if k%2 == 0 {
				p = append(p, i)
			} else {
				q = append(q, i)
			}
		}
		sortPath(p)
		sortPath(q)
		m := p.Merge(q)
		if len(m) != len(p)+len(q) {
			return false
		}
		if !m.IsOrdered() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: MergeCost equals Merge().Cost() and MergeInto equals Merge,
// for random disjoint paths over a random pattern, both objectives.
func TestPathMergeCostAndMergeIntoAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(14)
		offs := make([]int, n)
		for i := range offs {
			offs[i] = rng.Intn(21) - 10
		}
		pat := Pattern{Array: "A", Stride: 1 + rng.Intn(3), Offsets: offs}
		var p, q Path
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				p = append(p, i)
			case 1:
				q = append(q, i)
			}
		}
		m := rng.Intn(4)
		merged := p.Merge(q)
		for _, wrap := range []bool{false, true} {
			want := merged.Cost(pat, m, wrap)
			if got := p.MergeCost(q, pat, m, wrap); got != want {
				t.Fatalf("trial %d wrap=%v: MergeCost=%d, Merge().Cost()=%d (p=%v q=%v)", trial, wrap, got, want, p, q)
			}
			if got := q.MergeCost(p, pat, m, wrap); got != want {
				t.Fatalf("trial %d wrap=%v: MergeCost not symmetric: %d vs %d", trial, wrap, got, want)
			}
		}
		scratch := make(Path, 0, 4) // deliberately small: MergeInto must grow it
		if got := p.MergeInto(q, scratch); !reflect.DeepEqual([]int(got), []int(merged)) {
			t.Fatalf("trial %d: MergeInto=%v, Merge=%v", trial, got, merged)
		}
	}
}

// MergeInto recycles a sufficiently large destination buffer in place.
func TestPathMergeIntoReusesBuffer(t *testing.T) {
	p, q := Path{0, 3, 5}, Path{1, 4}
	dst := make(Path, 0, 8)
	out := p.MergeInto(q, dst)
	if !reflect.DeepEqual([]int(out), []int{0, 1, 3, 4, 5}) {
		t.Fatalf("MergeInto = %v", out)
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("MergeInto allocated despite sufficient capacity")
	}
	if nilOut := p.MergeInto(q, nil); !reflect.DeepEqual([]int(nilOut), []int(out)) {
		t.Fatalf("MergeInto(nil dst) = %v", nilOut)
	}
	if empty := Path(nil).MergeInto(nil, dst); len(empty) != 0 {
		t.Fatalf("empty merge = %v", empty)
	}
}

func sortPath(p Path) {
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j] < p[j-1]; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}

// Property: Cost is never negative and bounded by the number of
// transitions considered.
func TestPathCostBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		offs := make([]int, n)
		for i := range offs {
			offs[i] = rng.Intn(21) - 10
		}
		pat := Pattern{Array: "A", Stride: 1 + rng.Intn(3), Offsets: offs}
		var path Path
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				path = append(path, i)
			}
		}
		if len(path) == 0 {
			path = Path{0}
		}
		m := rng.Intn(4)
		for _, wrap := range []bool{false, true} {
			c := path.Cost(pat, m, wrap)
			maxT := len(path) - 1
			if wrap {
				maxT++
			}
			if c < 0 || c > maxT {
				t.Fatalf("cost %d outside [0,%d] for path %v pattern %v", c, maxT, path, pat)
			}
		}
	}
}

func TestTransitionCostIndexed(t *testing.T) {
	tests := []struct {
		d, m  int
		index []int
		want  int
	}{
		{1, 1, nil, 0},
		{5, 1, nil, 1},
		{5, 1, []int{5}, 0},
		{-5, 1, []int{5}, 0},
		{5, 1, []int{-5}, 0},
		{4, 1, []int{5}, 1},
		{0, 0, []int{}, 0},
		{7, 0, []int{3, 7}, 0},
	}
	for _, tt := range tests {
		if got := TransitionCostIndexed(tt.d, tt.m, tt.index); got != tt.want {
			t.Errorf("TransitionCostIndexed(%d,%d,%v) = %d, want %d", tt.d, tt.m, tt.index, got, tt.want)
		}
	}
}

func TestPathCostIndexed(t *testing.T) {
	pat := NewPattern(0, 5, 0)
	p := Path{0, 1, 2}
	if got := p.CostIndexed(pat, 1, nil, false); got != 2 {
		t.Fatalf("base cost = %d, want 2", got)
	}
	if got := p.CostIndexed(pat, 1, []int{5}, false); got != 0 {
		t.Fatalf("indexed cost = %d, want 0", got)
	}
	// Wrap distance 0+1-0 = 1, free with M=1.
	if got := p.CostIndexed(pat, 1, []int{5}, true); got != 0 {
		t.Fatalf("wrap indexed cost = %d, want 0", got)
	}
	if got := (Path{}).CostIndexed(pat, 1, nil, true); got != 0 {
		t.Fatalf("empty path cost = %d", got)
	}
}

func TestAssignmentCostIndexed(t *testing.T) {
	pat := NewPattern(0, 9, 0, 9)
	a := Assignment{Paths: []Path{{0, 1}, {2, 3}}}
	if got := a.CostIndexed(pat, 1, nil, false); got != 2 {
		t.Fatalf("base = %d, want 2", got)
	}
	if got := a.CostIndexed(pat, 1, []int{9}, false); got != 0 {
		t.Fatalf("indexed = %d, want 0", got)
	}
}

func TestNormalizeWithEmptyPaths(t *testing.T) {
	// Normalize tolerates empty paths (sorting them first) even though
	// Validate rejects them; exercised for robustness.
	a := Assignment{Paths: []Path{{3}, {}, {1}}}
	a.Normalize()
	if len(a.Paths[0]) != 0 {
		t.Fatalf("empty path should sort first: %v", a.Paths)
	}
	if a.Paths[1][0] != 1 || a.Paths[2][0] != 3 {
		t.Fatalf("paths unsorted: %v", a.Paths)
	}
}
