package model

import (
	"fmt"
	"sort"
	"strings"
)

// Path is an ordered subsequence of access indices (into a Pattern's
// program order) that share one address register. Indices are strictly
// increasing; the register serves the accesses in exactly this order
// within every iteration.
type Path []int

// Clone returns a copy of the path.
func (p Path) Clone() Path {
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// IsOrdered reports whether the path's indices are strictly increasing,
// which every valid register subsequence must be (accesses happen in
// program order).
func (p Path) IsOrdered() bool {
	for k := 1; k < len(p); k++ {
		if p[k] <= p[k-1] {
			return false
		}
	}
	return true
}

// Cost returns the number of unit-cost address computations the path
// incurs per loop iteration under modify range M: one per consecutive
// pair whose intra-iteration distance exceeds M, plus — if wrap is true —
// one if the inter-iteration distance from the last access back to the
// first access of the next iteration exceeds M. This is the paper's C(P).
func (p Path) Cost(pat Pattern, modifyRange int, wrap bool) int {
	if len(p) == 0 {
		return 0
	}
	cost := 0
	for k := 1; k < len(p); k++ {
		cost += TransitionCost(pat.Distance(p[k-1], p[k]), modifyRange)
	}
	if wrap {
		cost += TransitionCost(pat.WrapDistance(p[len(p)-1], p[0]), modifyRange)
	}
	return cost
}

// Merge returns the order-preserving merge P ⊕ Q of two disjoint paths:
// the union of their indices in increasing (program) order. It is the
// paper's merge operation "⊕"; e.g. (a1,a4,a6) ⊕ (a3,a5) = (a1,a3,a4,a5,a6).
func (p Path) Merge(q Path) Path {
	out := make(Path, 0, len(p)+len(q))
	i, j := 0, 0
	for i < len(p) && j < len(q) {
		if p[i] < q[j] {
			out = append(out, p[i])
			i++
		} else {
			out = append(out, q[j])
			j++
		}
	}
	out = append(out, p[i:]...)
	out = append(out, q[j:]...)
	return out
}

// MergeCost returns the cost C(P ⊕ Q) the order-preserving merge of p
// and q would have, without materializing the merged path: the two
// strictly increasing index slices are walked in merge order and each
// consecutive transition is charged as in Cost. It is the hot-path
// form of p.Merge(q).Cost(pat, modifyRange, wrap) and performs no
// allocation.
func (p Path) MergeCost(q Path, pat Pattern, modifyRange int, wrap bool) int {
	if len(p) == 0 {
		return q.Cost(pat, modifyRange, wrap)
	}
	if len(q) == 0 {
		return p.Cost(pat, modifyRange, wrap)
	}
	i, j := 0, 0
	var first int
	if p[0] < q[0] {
		first = p[0]
		i = 1
	} else {
		first = q[0]
		j = 1
	}
	prev, cost := first, 0
	for i < len(p) || j < len(q) {
		var next int
		if j == len(q) || (i < len(p) && p[i] < q[j]) {
			next = p[i]
			i++
		} else {
			next = q[j]
			j++
		}
		cost += TransitionCost(pat.Distance(prev, next), modifyRange)
		prev = next
	}
	if wrap {
		cost += TransitionCost(pat.WrapDistance(prev, first), modifyRange)
	}
	return cost
}

// MergeInto writes the order-preserving merge p ⊕ q into dst and
// returns it, growing dst only when its capacity is insufficient. It
// computes the same result as Merge but lets callers that merge
// repeatedly recycle one scratch buffer instead of allocating per
// merge. dst may be nil; it must not alias p or q.
func (p Path) MergeInto(q Path, dst Path) Path {
	if need := len(p) + len(q); cap(dst) < need {
		dst = make(Path, 0, need)
	}
	dst = dst[:0]
	i, j := 0, 0
	for i < len(p) && j < len(q) {
		if p[i] < q[j] {
			dst = append(dst, p[i])
			i++
		} else {
			dst = append(dst, q[j])
			j++
		}
	}
	dst = append(dst, p[i:]...)
	dst = append(dst, q[j:]...)
	return dst
}

// String renders the path as "(a1,a3,a5)" using the paper's 1-based
// access naming.
func (p Path) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for k, i := range p {
		if k > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "a%d", i+1)
	}
	b.WriteByte(')')
	return b.String()
}

// Assignment allocates every access of a pattern to one address
// register: Paths[r] is the subsequence of access indices served by
// register r. A valid assignment partitions {0..N-1}.
type Assignment struct {
	Paths []Path
}

// Registers returns the number of address registers the assignment uses.
func (a Assignment) Registers() int { return len(a.Paths) }

// Cost returns the total number of unit-cost address computations per
// iteration across all registers.
func (a Assignment) Cost(pat Pattern, modifyRange int, wrap bool) int {
	total := 0
	for _, p := range a.Paths {
		total += p.Cost(pat, modifyRange, wrap)
	}
	return total
}

// Validate checks that the assignment is a partition of the pattern's
// accesses into strictly increasing subsequences.
func (a Assignment) Validate(pat Pattern) error {
	n := pat.N()
	seen := make([]bool, n)
	count := 0
	for r, p := range a.Paths {
		if len(p) == 0 {
			return fmt.Errorf("model: register %d has an empty path", r)
		}
		if !p.IsOrdered() {
			return fmt.Errorf("model: register %d path %v is not strictly increasing", r, []int(p))
		}
		for _, i := range p {
			if i < 0 || i >= n {
				return fmt.Errorf("model: register %d references access %d outside [0,%d)", r, i, n)
			}
			if seen[i] {
				return fmt.Errorf("model: access %d assigned to more than one register", i)
			}
			seen[i] = true
			count++
		}
	}
	if count != n {
		return fmt.Errorf("model: assignment covers %d of %d accesses", count, n)
	}
	return nil
}

// RegisterOf returns, for each access index, the register serving it.
func (a Assignment) RegisterOf(n int) []int {
	reg := make([]int, n)
	for i := range reg {
		reg[i] = -1
	}
	for r, p := range a.Paths {
		for _, i := range p {
			if i >= 0 && i < n {
				reg[i] = r
			}
		}
	}
	return reg
}

// Normalize sorts the paths by their first access index so that
// equivalent assignments compare equal; it returns the receiver for
// chaining.
func (a Assignment) Normalize() Assignment {
	sort.Slice(a.Paths, func(i, j int) bool {
		if len(a.Paths[i]) == 0 {
			return true
		}
		if len(a.Paths[j]) == 0 {
			return false
		}
		return a.Paths[i][0] < a.Paths[j][0]
	})
	return a
}

// Clone deep-copies the assignment.
func (a Assignment) Clone() Assignment {
	out := Assignment{Paths: make([]Path, len(a.Paths))}
	for i, p := range a.Paths {
		out.Paths[i] = p.Clone()
	}
	return out
}

// String renders the assignment as "R0=(a1,a3) R1=(a2,a4)".
func (a Assignment) String() string {
	var b strings.Builder
	for r, p := range a.Paths {
		if r > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "R%d=%s", r, p)
	}
	return b.String()
}

// SingletonAssignment returns the trivial assignment with one register
// per access — the starting point of zero intra-iteration cost used by
// upper-bound arguments (with wrap disabled every singleton path has
// cost equal to its own wrap transition only).
func SingletonAssignment(n int) Assignment {
	a := Assignment{Paths: make([]Path, n)}
	for i := 0; i < n; i++ {
		a.Paths[i] = Path{i}
	}
	return a
}
