package model

// Indexed (modify-register) cost model. Real AGUs (TI C5x AR0-indexed
// modes, Motorola 56k Nx registers) extend the immediate post-modify
// range with a small file of index registers: an address-register
// update whose distance equals ±(an index register's value) is also
// performed in parallel, at zero cost. The paper's model is the
// special case of an empty index file. The indexed model keeps the
// unit cost for everything else, so all structural results (path
// cover, merging) carry over with the wider zero-cost predicate.

// TransitionCostIndexed returns the cost of an address-register update
// by distance: 0 if |distance| <= modifyRange or |distance| equals one
// of the index-register values, 1 otherwise.
func TransitionCostIndexed(distance, modifyRange int, index []int) int {
	if TransitionCost(distance, modifyRange) == 0 {
		return 0
	}
	if distance < 0 {
		distance = -distance
	}
	for _, v := range index {
		if v < 0 {
			v = -v
		}
		if distance == v {
			return 0
		}
	}
	return 1
}

// CostIndexed is Path.Cost under the indexed cost model.
func (p Path) CostIndexed(pat Pattern, modifyRange int, index []int, wrap bool) int {
	if len(p) == 0 {
		return 0
	}
	cost := 0
	for k := 1; k < len(p); k++ {
		cost += TransitionCostIndexed(pat.Distance(p[k-1], p[k]), modifyRange, index)
	}
	if wrap {
		cost += TransitionCostIndexed(pat.WrapDistance(p[len(p)-1], p[0]), modifyRange, index)
	}
	return cost
}

// CostIndexed is Assignment.Cost under the indexed cost model.
func (a Assignment) CostIndexed(pat Pattern, modifyRange int, index []int, wrap bool) int {
	total := 0
	for _, p := range a.Paths {
		total += p.CostIndexed(pat, modifyRange, index, wrap)
	}
	return total
}
