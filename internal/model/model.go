// Package model defines the core data types of the register-constrained
// address computation problem from Basu, Leupers, Marwedel:
// "Register-Constrained Address Computation in DSP Programs" (DATE 1998).
//
// A DSP loop accesses array elements A[i+d] where i is the loop variable
// and d a constant offset. The access pattern of one loop iteration is the
// ordered sequence of those offsets. An address generation unit (AGU)
// holds K address registers; a register used for two consecutive accesses
// is updated by their address distance, at zero cost if the distance lies
// within the modify range M and at the cost of one extra instruction
// otherwise. The optimization problem is the allocation of accesses to
// registers minimizing the number of unit-cost updates per iteration.
package model

import (
	"fmt"
	"sort"
	"strings"
)

// Access is a single array reference in the loop body.
type Access struct {
	// Array names the accessed array. The empty string is treated as a
	// distinct (default) array.
	Array string
	// Offset is the constant displacement d of the reference A[i+d]
	// relative to the loop variable.
	Offset int
	// Write marks a store (assignment target); reads are the default.
	// Addressing cost is identical for loads and stores — the flag
	// only selects the generated data operation.
	Write bool
}

// Pattern is the ordered access sequence of one array within one loop
// iteration, together with the loop stride. Offsets[k] is the offset of
// the k-th access in program order.
type Pattern struct {
	// Array is the accessed array's name (informational).
	Array string
	// Stride is the increment of the loop variable per iteration.
	Stride int
	// Offsets holds the access offsets in program order.
	Offsets []int
}

// NewPattern returns a Pattern over the given offsets with stride 1,
// the common case in the paper's examples.
func NewPattern(offsets ...int) Pattern {
	return Pattern{Array: "A", Stride: 1, Offsets: offsets}
}

// PaperExample returns the seven-access example pattern of the paper's
// Section 2 (offsets 1, 0, 2, -1, 1, 0, -2 with stride 1). With modify
// range M=1 its distance graph is the paper's Figure 1.
func PaperExample() Pattern {
	return NewPattern(1, 0, 2, -1, 1, 0, -2)
}

// N returns the number of accesses per iteration.
func (p Pattern) N() int { return len(p.Offsets) }

// Distance returns the intra-iteration address distance from access i to
// access j, i.e. the post-modify amount a register needs after serving
// access i so that it points at access j of the same iteration.
func (p Pattern) Distance(i, j int) int { return p.Offsets[j] - p.Offsets[i] }

// WrapDistance returns the inter-iteration address distance from access i
// (iteration t) to access j (iteration t+1): the loop variable advances by
// Stride, so the target address is Offsets[j]+Stride relative to the
// current iteration's frame.
func (p Pattern) WrapDistance(i, j int) int {
	return p.Offsets[j] + p.Stride - p.Offsets[i]
}

// Validate reports whether the pattern is well-formed: at least one
// access and a non-zero stride direction is not required, but a nil
// offsets slice is rejected.
func (p Pattern) Validate() error {
	if len(p.Offsets) == 0 {
		return fmt.Errorf("model: pattern %q has no accesses", p.Array)
	}
	return nil
}

// String renders the pattern as e.g. "A: [+1 0 +2 -1 +1 0 -2] stride 1".
func (p Pattern) String() string {
	var b strings.Builder
	name := p.Array
	if name == "" {
		name = "<anon>"
	}
	fmt.Fprintf(&b, "%s: [", name)
	for k, d := range p.Offsets {
		if k > 0 {
			b.WriteByte(' ')
		}
		if d > 0 {
			fmt.Fprintf(&b, "+%d", d)
		} else {
			fmt.Fprintf(&b, "%d", d)
		}
	}
	fmt.Fprintf(&b, "] stride %d", p.Stride)
	return b.String()
}

// LoopSpec describes a complete counted loop over one induction variable
// with a body consisting of array accesses in program order. It is the
// lowering target of the frontend parser and the input to multi-array
// allocation.
type LoopSpec struct {
	// Var is the induction variable name (informational).
	Var string
	// From and To delimit the iteration range (inclusive), as in
	// for (i = From; i <= To; i += Stride).
	From, To int
	// Stride is the induction step per iteration; must be positive.
	Stride int
	// Accesses lists the body's array references in program order.
	Accesses []Access
}

// Iterations returns the number of iterations the loop executes.
func (l LoopSpec) Iterations() int {
	if l.Stride <= 0 || l.To < l.From {
		return 0
	}
	return (l.To-l.From)/l.Stride + 1
}

// Validate checks structural sanity of the loop.
func (l LoopSpec) Validate() error {
	if l.Stride <= 0 {
		return fmt.Errorf("model: loop stride must be positive, got %d", l.Stride)
	}
	if len(l.Accesses) == 0 {
		return fmt.Errorf("model: loop has no array accesses")
	}
	return nil
}

// Arrays returns the distinct array names referenced by the loop, in
// first-appearance order.
func (l LoopSpec) Arrays() []string {
	seen := make(map[string]bool)
	var names []string
	for _, a := range l.Accesses {
		if !seen[a.Array] {
			seen[a.Array] = true
			names = append(names, a.Array)
		}
	}
	return names
}

// Patterns splits the loop body into one Pattern per referenced array,
// preserving program order within each array. The second return value
// maps each pattern position back to the index of the originating access
// in l.Accesses (patternToLoop[arrayIdx][k]).
func (l LoopSpec) Patterns() ([]Pattern, [][]int) {
	order := l.Arrays()
	idx := make(map[string]int, len(order))
	for i, name := range order {
		idx[name] = i
	}
	pats := make([]Pattern, len(order))
	back := make([][]int, len(order))
	for i, name := range order {
		pats[i] = Pattern{Array: name, Stride: l.Stride}
	}
	for ai, a := range l.Accesses {
		i := idx[a.Array]
		pats[i].Offsets = append(pats[i].Offsets, a.Offset)
		back[i] = append(back[i], ai)
	}
	return pats, back
}

// AGUSpec describes the address generation unit of the target DSP.
type AGUSpec struct {
	// Registers is K, the number of physical address registers.
	Registers int
	// ModifyRange is M, the largest |d| for which a post-modify by d is
	// free (performed in parallel with the data-path operation).
	ModifyRange int
}

// Validate checks the AGU description.
func (s AGUSpec) Validate() error {
	if s.Registers < 1 {
		return fmt.Errorf("model: AGU needs at least one address register, got %d", s.Registers)
	}
	if s.ModifyRange < 0 {
		return fmt.Errorf("model: AGU modify range must be non-negative, got %d", s.ModifyRange)
	}
	return nil
}

// String renders the AGU spec as "AGU{K=4, M=1}".
func (s AGUSpec) String() string {
	return fmt.Sprintf("AGU{K=%d, M=%d}", s.Registers, s.ModifyRange)
}

// TransitionCost returns the cost of updating an address register by the
// given distance: 0 if |distance| <= M (parallel post-modify), 1
// otherwise (one extra address arithmetic instruction).
func TransitionCost(distance, modifyRange int) int {
	if distance < 0 {
		distance = -distance
	}
	if distance <= modifyRange {
		return 0
	}
	return 1
}

// OffsetSpan returns the smallest and largest offset of the pattern.
// It panics on an empty pattern.
func (p Pattern) OffsetSpan() (min, max int) {
	if len(p.Offsets) == 0 {
		panic("model: OffsetSpan of empty pattern")
	}
	min, max = p.Offsets[0], p.Offsets[0]
	for _, d := range p.Offsets[1:] {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return min, max
}

// DistinctOffsets returns the sorted distinct offsets of the pattern.
func (p Pattern) DistinctOffsets() []int {
	seen := make(map[int]bool, len(p.Offsets))
	var out []int
	for _, d := range p.Offsets {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Ints(out)
	return out
}
