// Tests for the stats collector's latency ring: wraparound past the
// window and percentile edge cases with zero and one observations.

package engine

import (
	"testing"
	"time"
)

// TestLatencyRingWraparound overwrites the whole ring twice and
// checks the percentiles reflect only the newest window — an old
// generation of fast solves must not drag the estimates down — while
// the job counters keep counting every observation.
func TestLatencyRingWraparound(t *testing.T) {
	var c collector
	for i := 0; i < latencyWindow; i++ {
		c.solved(10 * time.Microsecond)
	}
	if s := c.snapshot(); s.SolveP50Micros != 10 || s.SolveP99Micros != 10 {
		t.Fatalf("pre-wrap percentiles: p50=%g p99=%g, want 10/10", s.SolveP50Micros, s.SolveP99Micros)
	}
	for i := 0; i < latencyWindow; i++ {
		c.solved(1000 * time.Microsecond)
	}
	s := c.snapshot()
	if s.SolveP50Micros != 1000 || s.SolveP90Micros != 1000 || s.SolveP99Micros != 1000 {
		t.Fatalf("post-wrap percentiles: p50=%g p90=%g p99=%g, want 1000s — stale ring entries leaked in",
			s.SolveP50Micros, s.SolveP90Micros, s.SolveP99Micros)
	}
	if s.Jobs != 2*latencyWindow || s.CacheMisses != 2*latencyWindow {
		t.Fatalf("counters lost observations: %+v", s)
	}
}

// TestLatencyRingPartialWrap crosses the window boundary by a
// fraction and checks the sample size stays capped at the window
// while mixing old and new generations.
func TestLatencyRingPartialWrap(t *testing.T) {
	var c collector
	for i := 0; i < latencyWindow; i++ {
		c.solved(10 * time.Microsecond)
	}
	const extra = 100
	for i := 0; i < extra; i++ {
		c.solved(1000 * time.Microsecond)
	}
	s := c.snapshot()
	// The ring holds latencyWindow-extra old and extra new samples:
	// p50 still sits on the old generation, p99 must see the new one
	// (extra/latencyWindow ≈ 2.4% > 1%).
	if s.SolveP50Micros != 10 {
		t.Fatalf("p50 = %g, want 10 (old generation still dominates)", s.SolveP50Micros)
	}
	if s.SolveP99Micros != 1000 {
		t.Fatalf("p99 = %g, want 1000 (new generation in the tail)", s.SolveP99Micros)
	}
}

// TestPercentilesNoSamples checks an idle collector reports zero
// percentiles rather than NaN or garbage.
func TestPercentilesNoSamples(t *testing.T) {
	var c collector
	s := c.snapshot()
	if s.SolveP50Micros != 0 || s.SolveP90Micros != 0 || s.SolveP99Micros != 0 {
		t.Fatalf("idle percentiles non-zero: %+v", s)
	}
	if s.HitRate != 0 {
		t.Fatalf("idle hit rate %g", s.HitRate)
	}
}

// TestPercentilesOneSample checks a single observation pins every
// percentile to itself.
func TestPercentilesOneSample(t *testing.T) {
	var c collector
	c.solved(42 * time.Microsecond)
	s := c.snapshot()
	for _, p := range []float64{s.SolveP50Micros, s.SolveP90Micros, s.SolveP99Micros} {
		if p != 42 {
			t.Fatalf("single-sample percentiles %+v, want all 42", s)
		}
	}
	if s.Jobs != 1 || s.CacheMisses != 1 {
		t.Fatalf("counters off: %+v", s)
	}
}
