// Adaptive load shedding, CoDel-style. The signal is queue wait (the
// sojourn from submission to a worker picking the task up), and the
// statistic is the WINDOW MINIMUM: a busy engine whose queue still
// drains shows occasional near-zero waits, so its minimum stays low
// and nothing sheds; a standing queue — more offered work than the
// pool clears, the state that turns every caller's latency into queue
// time — keeps even the minimum above the target for a full window,
// and that is the overload verdict.
//
// The engine only RENDERS the verdict (Overloaded); policy lives in
// the server, which rejects the synchronous solve paths with a 503 +
// Retry-After while the verdict stands. Async submissions are
// admitted regardless — they are queue-depth-bounded already and
// their callers asked to wait.
//
// The verdict fails open on stale evidence: queue waits are only
// observed at dequeue, so an engine that went quiet (or idle) stops
// producing evidence and the verdict expires rather than shedding
// traffic on history.

package engine

import (
	"math"
	"sync/atomic"
	"time"
)

// Shedding defaults (Options zero values).
const (
	DefaultShedTarget = 50 * time.Millisecond
	DefaultShedWindow = 100 * time.Millisecond
	// shedStaleAfter expires an overload verdict with no fresh queue
	// observations behind it.
	shedStaleAfter = time.Second
)

// shedController is the windowed-minimum tracker. All state is
// atomic; observe runs on every dequeue and is a handful of loads and
// at most two stores on the happy path.
type shedController struct {
	target time.Duration
	window time.Duration

	windowStart atomic.Int64 // unix nanos of the current window's start
	windowMin   atomic.Int64 // min sojourn (ns) this window; MaxInt64 = empty
	lastObserve atomic.Int64 // unix nanos of the last observation
	shedding    atomic.Bool
	flips       atomic.Uint64 // verdict transitions, both directions
}

// newShedController returns nil when disabled (target < 0) — every
// method is nil-safe, so the disabled path costs one pointer compare.
func newShedController(target, window time.Duration, now time.Time) *shedController {
	if target < 0 {
		return nil
	}
	if target == 0 {
		target = DefaultShedTarget
	}
	if window <= 0 {
		window = DefaultShedWindow
	}
	s := &shedController{target: target, window: window}
	s.windowStart.Store(now.UnixNano())
	s.windowMin.Store(math.MaxInt64)
	return s
}

// observe feeds one queue wait, rolling the window when it is due.
// Concurrent rolls race benignly: exactly one caller wins the
// windowStart CAS and publishes the verdict; observations landing on
// either side of the roll perturb one window's minimum, which the
// controller tolerates by construction (it is an estimator).
func (s *shedController) observe(sojourn time.Duration, now time.Time) {
	if s == nil {
		return
	}
	ns := now.UnixNano()
	// Coarse staleness stamp: the horizon is shedStaleAfter (1s), so
	// refreshing once per millisecond is plenty — and it keeps the
	// common back-to-back dequeue from writing the shared cache line
	// at all, which is what every worker would otherwise contend on.
	if ns-s.lastObserve.Load() > int64(time.Millisecond) {
		s.lastObserve.Store(ns)
	}
	for {
		cur := s.windowMin.Load()
		if int64(sojourn) >= cur || s.windowMin.CompareAndSwap(cur, int64(sojourn)) {
			break
		}
	}
	start := s.windowStart.Load()
	if ns-start < int64(s.window) {
		return
	}
	if !s.windowStart.CompareAndSwap(start, ns) {
		return // another dequeue rolled this window
	}
	min := s.windowMin.Swap(math.MaxInt64)
	over := min != math.MaxInt64 && time.Duration(min) > s.target
	if s.shedding.Swap(over) != over {
		s.flips.Add(1)
	}
}

// overloaded reports the current verdict, expiring it when stale.
func (s *shedController) overloaded(now time.Time) bool {
	if s == nil || !s.shedding.Load() {
		return false
	}
	if now.UnixNano()-s.lastObserve.Load() > int64(shedStaleAfter) {
		if s.shedding.Swap(false) {
			s.flips.Add(1)
		}
		return false
	}
	return true
}

// Overloaded reports whether the engine currently judges itself
// overloaded: the minimum queue wait stayed above the shed target for
// a full window. The server's sync solve paths consult this per
// request and shed with 503 + Retry-After while it holds.
func (e *Engine) Overloaded() bool {
	return e.shed.overloaded(time.Now())
}

// ShedRetryAfterSeconds is the Retry-After a shedding server should
// name: one window is how long the verdict takes to clear once the
// queue drains, so "come back in a second" always spans it.
func ShedRetryAfterSeconds() int { return 1 }
