// Cluster routing digest: a single 64-bit fold of the binary
// canonical cache key, exported so the gateway (internal/cluster) can
// place a request on the consistent-hash ring by the same equivalence
// classes the result cache uses. Two requests with equal RouteKeys
// land on the same node and — because the canonical key also equals —
// share that node's warm cache entry; translated twins (A[i],A[i+1]
// vs B[i+7],B[i+8]) therefore co-locate exactly as they co-cache.

package engine

// RouteKey returns a 64-bit routing digest of the request's canonical
// cache key: the translation-normalized offset sequence, stride,
// objective, merge strategy and AGU parameters. It performs no
// allocation and does not validate the request — an invalid request
// still routes deterministically (the owning node rejects it).
func RouteKey(req Request) uint64 {
	k := canonicalKey(req)
	d := digest{h1: k.h1, h2: k.h2}
	d.mixInt(int(k.registers))
	d.mixInt(int(k.modifyRange))
	d.mixInt(int(k.flags)<<8 | int(k.strategy))
	return d.h1 ^ d.h2
}
