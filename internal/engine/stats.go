// Aggregate serving statistics: lock-free atomic counters on the hot
// path (the former single collector mutex serialized every job
// completion across the pool), solve latency percentiles from a
// bounded ring of recent observations (stats.LatencyRing, shared with
// the async jobs subsystem).

package engine

import (
	"sync/atomic"
	"time"

	"dspaddr/internal/obs"
	"dspaddr/internal/stats"
)

// latencyWindow is how many recent solve latencies feed the
// percentile estimates.
const latencyWindow = stats.LatencyWindow

// Stats is a point-in-time snapshot of an engine's counters.
type Stats struct {
	// Workers is the configured worker-pool size.
	Workers int `json:"workers"`
	// Jobs counts completed jobs of every outcome.
	Jobs uint64 `json:"jobs"`
	// CacheHits counts jobs answered without running their own solve:
	// from the canonical-pattern cache, or by sharing a concurrent
	// identical job's solve (single-flight).
	CacheHits uint64 `json:"cacheHits"`
	// CacheMisses counts jobs that ran the solver (successfully).
	CacheMisses uint64 `json:"cacheMisses"`
	// Deduped is the subset of CacheHits served by single-flight
	// deduplication: the job missed the cache but attached to a
	// concurrent identical solve instead of starting its own.
	Deduped uint64 `json:"deduped"`
	// Errors counts jobs failed by the allocator or a bad request.
	Errors uint64 `json:"errors"`
	// Timeouts counts jobs abandoned past the per-job deadline.
	Timeouts uint64 `json:"timeouts"`
	// Canceled counts jobs whose submitting context was canceled.
	Canceled uint64 `json:"canceled"`
	// CacheEntries is the current number of cached canonical results
	// across all shards; CacheCapacity is the configured total bound
	// (0 with caching disabled) and CacheShards the lock-domain count.
	CacheEntries  int `json:"cacheEntries"`
	CacheCapacity int `json:"cacheCapacity"`
	CacheShards   int `json:"cacheShards"`
	// HitRate is CacheHits over (CacheHits+CacheMisses), 0 when idle.
	HitRate float64 `json:"hitRate"`
	// SolveP50Micros, SolveP90Micros and SolveP99Micros are latency
	// percentiles in microseconds over the recent solve window
	// (cache misses only — hits are two orders of magnitude cheaper).
	SolveP50Micros float64 `json:"solveP50Micros"`
	SolveP90Micros float64 `json:"solveP90Micros"`
	SolveP99Micros float64 `json:"solveP99Micros"`
	// Shedding reports the current adaptive load-shedding verdict;
	// ShedFlips counts verdict transitions in either direction.
	Shedding  bool   `json:"shedding"`
	ShedFlips uint64 `json:"shedFlips"`
}

// collector accumulates statistics; all methods are concurrency-safe.
// Counters are independent atomics — a snapshot is not a consistent
// cut across them, which monitoring tolerates in exchange for jobs
// not contending on a shared mutex.
type collector struct {
	workers  int
	jobs     atomic.Uint64
	hits     atomic.Uint64
	misses   atomic.Uint64
	deduped  atomic.Uint64
	errors   atomic.Uint64
	timeouts atomic.Uint64
	canceled atomic.Uint64
	lat      stats.LatencyRing
	// solveHist optionally mirrors the latency ring into a native
	// Prometheus histogram (Options.SolveHist); nil-safe.
	solveHist *obs.Histogram
}

func (c *collector) hit() {
	c.jobs.Add(1)
	c.hits.Add(1)
}

// dedupedHit records a single-flight follower: answered like a cache
// hit, counted separately so the dedupe rate is observable.
func (c *collector) dedupedHit() {
	c.jobs.Add(1)
	c.hits.Add(1)
	c.deduped.Add(1)
}

func (c *collector) solved(d time.Duration) {
	c.jobs.Add(1)
	c.misses.Add(1)
	c.lat.Observe(d)
	c.solveHist.Observe(d)
}

func (c *collector) failed() {
	c.jobs.Add(1)
	c.errors.Add(1)
}

func (c *collector) timedOut() {
	c.jobs.Add(1)
	c.timeouts.Add(1)
}

func (c *collector) canceledJob() {
	c.jobs.Add(1)
	c.canceled.Add(1)
}

// snapshot renders the current counters plus latency percentiles.
func (c *collector) snapshot() Stats {
	s := Stats{
		Workers:     c.workers,
		Jobs:        c.jobs.Load(),
		CacheHits:   c.hits.Load(),
		CacheMisses: c.misses.Load(),
		Deduped:     c.deduped.Load(),
		Errors:      c.errors.Load(),
		Timeouts:    c.timeouts.Load(),
		Canceled:    c.canceled.Load(),
	}

	if looked := s.CacheHits + s.CacheMisses; looked > 0 {
		s.HitRate = float64(s.CacheHits) / float64(looked)
	}
	qs := c.lat.QuantilesMicros(0.50, 0.90, 0.99)
	s.SolveP50Micros, s.SolveP90Micros, s.SolveP99Micros = qs[0], qs[1], qs[2]
	return s
}
