// Aggregate serving statistics: cheap counters on the hot path, solve
// latency percentiles from a bounded ring of recent observations
// (stats.LatencyRing, shared with the async jobs subsystem).

package engine

import (
	"sync"
	"time"

	"dspaddr/internal/stats"
)

// latencyWindow is how many recent solve latencies feed the
// percentile estimates.
const latencyWindow = stats.LatencyWindow

// Stats is a point-in-time snapshot of an engine's counters.
type Stats struct {
	// Workers is the configured worker-pool size.
	Workers int `json:"workers"`
	// Jobs counts completed jobs of every outcome.
	Jobs uint64 `json:"jobs"`
	// CacheHits counts jobs answered without running their own solve:
	// from the canonical-pattern cache, or by sharing a concurrent
	// identical job's solve (single-flight).
	CacheHits uint64 `json:"cacheHits"`
	// CacheMisses counts jobs that ran the solver (successfully).
	CacheMisses uint64 `json:"cacheMisses"`
	// Deduped is the subset of CacheHits served by single-flight
	// deduplication: the job missed the cache but attached to a
	// concurrent identical solve instead of starting its own.
	Deduped uint64 `json:"deduped"`
	// Errors counts jobs failed by the allocator or a bad request.
	Errors uint64 `json:"errors"`
	// Timeouts counts jobs abandoned past the per-job deadline.
	Timeouts uint64 `json:"timeouts"`
	// Canceled counts jobs whose submitting context was canceled.
	Canceled uint64 `json:"canceled"`
	// CacheEntries is the current number of cached canonical results.
	CacheEntries int `json:"cacheEntries"`
	// HitRate is CacheHits over (CacheHits+CacheMisses), 0 when idle.
	HitRate float64 `json:"hitRate"`
	// SolveP50Micros, SolveP90Micros and SolveP99Micros are latency
	// percentiles in microseconds over the recent solve window
	// (cache misses only — hits are two orders of magnitude cheaper).
	SolveP50Micros float64 `json:"solveP50Micros"`
	SolveP90Micros float64 `json:"solveP90Micros"`
	SolveP99Micros float64 `json:"solveP99Micros"`
}

// collector accumulates statistics; all methods are concurrency-safe.
type collector struct {
	mu       sync.Mutex
	workers  int
	jobs     uint64
	hits     uint64
	misses   uint64
	deduped  uint64
	errors   uint64
	timeouts uint64
	canceled uint64
	lat      stats.LatencyRing
}

func (c *collector) hit() {
	c.mu.Lock()
	c.jobs++
	c.hits++
	c.mu.Unlock()
}

// dedupedHit records a single-flight follower: answered like a cache
// hit, counted separately so the dedupe rate is observable.
func (c *collector) dedupedHit() {
	c.mu.Lock()
	c.jobs++
	c.hits++
	c.deduped++
	c.mu.Unlock()
}

func (c *collector) solved(d time.Duration) {
	c.mu.Lock()
	c.jobs++
	c.misses++
	c.mu.Unlock()
	c.lat.Observe(d)
}

func (c *collector) failed() {
	c.mu.Lock()
	c.jobs++
	c.errors++
	c.mu.Unlock()
}

func (c *collector) timedOut() {
	c.mu.Lock()
	c.jobs++
	c.timeouts++
	c.mu.Unlock()
}

func (c *collector) canceledJob() {
	c.mu.Lock()
	c.jobs++
	c.canceled++
	c.mu.Unlock()
}

// snapshot renders the current counters plus latency percentiles.
func (c *collector) snapshot() Stats {
	c.mu.Lock()
	s := Stats{
		Workers:     c.workers,
		Jobs:        c.jobs,
		CacheHits:   c.hits,
		CacheMisses: c.misses,
		Deduped:     c.deduped,
		Errors:      c.errors,
		Timeouts:    c.timeouts,
		Canceled:    c.canceled,
	}
	c.mu.Unlock()

	if looked := s.CacheHits + s.CacheMisses; looked > 0 {
		s.HitRate = float64(s.CacheHits) / float64(looked)
	}
	qs := c.lat.QuantilesMicros(0.50, 0.90, 0.99)
	s.SolveP50Micros, s.SolveP90Micros, s.SolveP99Micros = qs[0], qs[1], qs[2]
	return s
}
