// Whole-loop jobs. A loop referencing several arrays cannot give each
// array the full register budget — the AGU's K registers are shared,
// so the engine delegates to core.AllocateLoop, which distributes them
// by marginal cost. Loop jobs ride the same worker pool, timeout
// handling and statistics as pattern jobs, with their own
// canonicalized cache entries: the key is the interleaved
// (array, translated-offset) access sequence, which pins down every
// allocation-relevant property of the loop body (per-array patterns
// and the access-to-pattern back-mapping) while ignoring array names,
// absolute offsets and loop bounds.

package engine

import (
	"context"
	"strconv"
	"strings"
	"time"

	"dspaddr/internal/core"
	"dspaddr/internal/model"
)

// LoopRequest is one whole-loop allocation job: the K registers are
// distributed over the loop's arrays by marginal cost, exactly as
// core.AllocateLoop does.
type LoopRequest struct {
	// Loop is the loop to allocate.
	Loop model.LoopSpec
	// AGU is the register constraint K and modify range M shared by
	// all arrays.
	AGU model.AGUSpec
	// InterIteration includes loop-back updates in the objective.
	InterIteration bool
	// Strategy names the phase-2 merge heuristic; see Request.Strategy.
	Strategy string
}

// config lowers the request to a core.Config.
func (r LoopRequest) config() core.Config {
	return Request{AGU: r.AGU, InterIteration: r.InterIteration, Strategy: r.Strategy}.config()
}

// LoopJobResult is the outcome of one whole-loop job.
type LoopJobResult struct {
	// Result is the loop allocation, nil if Err is set.
	Result *core.LoopResult
	// Err reports a failed job (see JobResult.Err).
	Err error
	// CacheHit reports that the result came from the cache.
	CacheHit bool
	// Elapsed is the wall time from dequeue to completion.
	Elapsed time.Duration
}

// RunLoop submits one whole-loop job and waits for its result. It
// returns early with an error result if ctx is canceled while the job
// is still queued.
func (e *Engine) RunLoop(ctx context.Context, req LoopRequest) LoopJobResult {
	done := make(chan LoopJobResult, 1)
	err := e.enqueue(ctx, func(ctx context.Context) {
		e.processLoop(ctx, req, func(r LoopJobResult) { done <- r })
	})
	if err != nil {
		return LoopJobResult{Err: err}
	}
	select {
	case r := <-done:
		return r
	case <-ctx.Done():
		return LoopJobResult{Err: ctx.Err()}
	}
}

// processLoop runs one whole-loop job on a worker goroutine; reply is
// called exactly once.
func (e *Engine) processLoop(ctx context.Context, req LoopRequest, reply func(LoopJobResult)) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		e.stats.canceledJob()
		reply(LoopJobResult{Err: err, Elapsed: time.Since(start)})
		return
	}
	if _, err := strategyFor(req.Strategy); err != nil {
		e.stats.failed()
		reply(LoopJobResult{Err: err, Elapsed: time.Since(start)})
		return
	}
	if err := req.Loop.Validate(); err != nil {
		e.stats.failed()
		reply(LoopJobResult{Err: err, Elapsed: time.Since(start)})
		return
	}
	e.solveKeyed(ctx, loopCanonicalKey(req),
		func() (any, error) { return core.AllocateLoop(req.Loop, req.config()) },
		func(v any, hit bool, err error, elapsed time.Duration) {
			if err != nil {
				reply(LoopJobResult{Err: err, Elapsed: elapsed})
				return
			}
			// Always hand out a rewritten copy — the solved value lives
			// in the cache (and in concurrent followers), so the caller
			// must never see the shared pointer.
			reply(LoopJobResult{Result: rewriteLoop(v.(*core.LoopResult), req), CacheHit: hit, Elapsed: elapsed})
		})
}

// loopCanonicalKey renders the allocation-relevant identity of a loop
// job: the interleaved access sequence as (array index, offset
// translated by the array's first offset) pairs, plus stride and the
// allocation parameters. Two loops with equal keys have identical
// per-array canonical patterns AND identical access-to-pattern
// back-mappings, so a cached core.LoopResult transfers between them
// by pattern rewriting alone.
func loopCanonicalKey(req LoopRequest) string {
	var b strings.Builder
	b.WriteString("loop:")
	idx := make(map[string]int)
	base := make([]int, 0, 4)
	for _, a := range req.Loop.Accesses {
		i, seen := idx[a.Array]
		if !seen {
			i = len(idx)
			idx[a.Array] = i
			base = append(base, a.Offset)
		}
		b.WriteString(strconv.Itoa(i))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(a.Offset - base[i]))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(req.Loop.Stride))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(req.AGU.Registers))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(req.AGU.ModifyRange))
	b.WriteByte('|')
	if req.InterIteration {
		b.WriteByte('w')
	}
	b.WriteByte('|')
	b.WriteString(req.Strategy)
	return b.String()
}

// rewriteLoop adapts a cached loop result to the requesting job: same
// budgets, assignments and costs, but echoing the caller's loop and
// per-array patterns. Assignments and index slices are cloned so
// callers can't corrupt the cached entry.
func rewriteLoop(cached *core.LoopResult, req LoopRequest) *core.LoopResult {
	pats, back := req.Loop.Patterns()
	out := &core.LoopResult{
		Loop:          req.Loop,
		Arrays:        make([]core.ArrayAllocation, len(cached.Arrays)),
		TotalCost:     cached.TotalCost,
		RegistersUsed: cached.RegistersUsed,
	}
	for i, aa := range cached.Arrays {
		res := *aa.Result
		res.Pattern = pats[i]
		res.Assignment = aa.Result.Assignment.Clone()
		out.Arrays[i] = core.ArrayAllocation{
			Result:          &res,
			GlobalRegisters: append([]int(nil), aa.GlobalRegisters...),
			LoopAccess:      append([]int(nil), back[i]...),
		}
	}
	return out
}
