// Whole-loop jobs. A loop referencing several arrays cannot give each
// array the full register budget — the AGU's K registers are shared,
// so the engine delegates to core's loop allocator, which distributes
// them by marginal cost. Loop jobs ride the same worker pool, timeout
// handling and statistics as pattern jobs, with their own
// canonicalized cache entries: the key digests the interleaved
// (array, translated-offset) access sequence, which pins down every
// allocation-relevant property of the loop body (per-array patterns
// and the access-to-pattern back-mapping) while ignoring array names,
// absolute offsets and loop bounds.

package engine

import (
	"context"
	"time"

	"dspaddr/internal/core"
	"dspaddr/internal/model"
	"dspaddr/internal/obs"
)

// LoopRequest is one whole-loop allocation job: the K registers are
// distributed over the loop's arrays by marginal cost, exactly as
// core.AllocateLoop does.
type LoopRequest struct {
	// Loop is the loop to allocate.
	Loop model.LoopSpec
	// AGU is the register constraint K and modify range M shared by
	// all arrays.
	AGU model.AGUSpec
	// InterIteration includes loop-back updates in the objective.
	InterIteration bool
	// Strategy names the phase-2 merge heuristic; see Request.Strategy.
	Strategy string
}

// config lowers the request to a core.Config.
func (r LoopRequest) config() core.Config {
	return Request{AGU: r.AGU, InterIteration: r.InterIteration, Strategy: r.Strategy}.config()
}

// LoopJobResult is the outcome of one whole-loop job.
type LoopJobResult struct {
	// Result is the loop allocation, nil if Err is set.
	Result *core.LoopResult
	// Err reports a failed job (see JobResult.Err).
	Err error
	// CacheHit reports that the result came from the cache.
	CacheHit bool
	// Elapsed is the wall time from dequeue to completion.
	Elapsed time.Duration
}

// RunLoop submits one whole-loop job and waits for its result. It
// returns early with an error result if ctx is canceled while the job
// is still queued or solving.
func (e *Engine) RunLoop(ctx context.Context, req LoopRequest) LoopJobResult {
	res := new(LoopJobResult)
	done := make(chan struct{})
	t := task{ctx: ctx, kind: taskLoop, loop: req, loopOut: res, done: done, enqueued: time.Now()}
	if err := e.enqueue(t); err != nil {
		return LoopJobResult{Err: err}
	}
	select {
	case <-done:
		return *res
	case <-ctx.Done():
		return LoopJobResult{Err: ctx.Err()}
	}
}

// processLoop runs one whole-loop job on a worker goroutine.
func (e *Engine) processLoop(ctx context.Context, solver *core.Solver, req LoopRequest) LoopJobResult {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		e.stats.canceledJob()
		return LoopJobResult{Err: err, Elapsed: time.Since(start)}
	}
	if _, err := strategyFor(req.Strategy); err != nil {
		e.stats.failed()
		return LoopJobResult{Err: err, Elapsed: time.Since(start)}
	}
	if err := req.Loop.Validate(); err != nil {
		e.stats.failed()
		return LoopJobResult{Err: err, Elapsed: time.Since(start)}
	}
	tr := obs.FromContext(ctx)
	sp := tr.StartSpan("key.build")
	key := loopCanonicalKey(req)
	sp.End()
	v, hit, err, elapsed := e.solveKeyed(ctx, solver, key, task{kind: taskLoop, loop: req}, start)
	if err != nil {
		return LoopJobResult{Err: err, Elapsed: elapsed}
	}
	// Always hand out a rewritten copy — the solved value lives in the
	// cache (and in concurrent followers), so the caller must never
	// see the shared pointer.
	sp = tr.StartSpan("result.rewrite")
	out := rewriteLoop(v.(*core.LoopResult), req)
	sp.End()
	return LoopJobResult{Result: out, CacheHit: hit, Elapsed: elapsed}
}

// loopCanonicalKey digests the allocation-relevant identity of a loop
// job: the interleaved access sequence as (array index, offset
// translated by the array's first offset) pairs, plus stride and the
// allocation parameters. Two loops with equal keys have identical
// per-array canonical patterns AND identical access-to-pattern
// back-mappings, so a cached core.LoopResult transfers between them
// by pattern rewriting alone. Array names are interned into dense
// indices through a small stack-resident table, so key construction
// stays allocation-free for loops with up to 16 distinct arrays.
func loopCanonicalKey(req LoopRequest) cacheKey {
	d := newDigest()
	var nameBuf [16]string
	var baseBuf [16]int
	names := nameBuf[:0]
	bases := baseBuf[:0]
	for _, a := range req.Loop.Accesses {
		idx := -1
		for i := range names {
			if names[i] == a.Array {
				idx = i
				break
			}
		}
		if idx < 0 {
			idx = len(names)
			names = append(names, a.Array)
			bases = append(bases, a.Offset)
		}
		d.mixInt(idx)
		d.mixInt(a.Offset - bases[idx])
	}
	d.mixInt(len(req.Loop.Accesses))
	d.mixInt(req.Loop.Stride)
	code, _ := strategyCode(req.Strategy)
	flags := keyFlagLoop
	if req.InterIteration {
		flags |= keyFlagWrap
	}
	return cacheKey{
		h1:          d.h1,
		h2:          d.h2,
		registers:   int32(req.AGU.Registers),
		modifyRange: int32(req.AGU.ModifyRange),
		flags:       flags,
		strategy:    code,
	}
}

// rewriteLoop adapts a cached loop result to the requesting job: same
// budgets, assignments and costs, but echoing the caller's loop and
// per-array patterns. Assignments and index slices are cloned so
// callers can't corrupt the cached entry.
func rewriteLoop(cached *core.LoopResult, req LoopRequest) *core.LoopResult {
	pats, back := req.Loop.Patterns()
	out := &core.LoopResult{
		Loop:          req.Loop,
		Arrays:        make([]core.ArrayAllocation, len(cached.Arrays)),
		TotalCost:     cached.TotalCost,
		RegistersUsed: cached.RegistersUsed,
	}
	for i, aa := range cached.Arrays {
		res := *aa.Result
		res.Pattern = pats[i]
		res.Assignment = aa.Result.Assignment.Clone()
		out.Arrays[i] = core.ArrayAllocation{
			Result:          &res,
			GlobalRegisters: append([]int(nil), aa.GlobalRegisters...),
			LoopAccess:      append([]int(nil), back[i]...),
		}
	}
	return out
}
