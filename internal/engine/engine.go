// Package engine is the concurrent batch allocation engine layered on
// top of the single-request allocator in package core.
//
// An Engine owns a bounded pool of worker goroutines, a sharded
// canonicalized-pattern result cache and aggregate serving statistics.
// Jobs — (pattern, configuration) pairs — are submitted one at a time
// with Run or many at once with RunBatch; either way they funnel
// through the same pool, so total solver concurrency never exceeds the
// configured worker count regardless of how many callers submit
// concurrently.
//
// Identical access patterns are common across the loops of real DSP
// programs (the same FIR tap structure appears in every filter), so the
// cache keys each job by a translation-normalized form of its pattern
// together with the allocation parameters; keys are fixed-size binary
// values built without allocation (see cache.go). A hit skips the
// path-cover and merge phases entirely and costs one shard-local map
// lookup plus a shallow result rewrite.
//
// The request hot path is engineered around three rules. Each worker
// owns a reusable core.Solver, so a cache miss reuses the previous
// solve's distance-graph, path-cover and merge workspaces instead of
// rebuilding them from heap. A missing result is computed on the
// worker that discovered the miss (the single-flight leader) rather
// than on a spawned goroutine; concurrent identical jobs attach to
// that flight as followers. And solves are cooperatively cancelable:
// the worker threads its job context into the phase-1 branch-and-bound
// and the merge loop, so a canceled or timed-out job releases its
// worker within microseconds instead of occupying it until the full
// solve completes.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dspaddr/internal/core"
	"dspaddr/internal/faults"
	"dspaddr/internal/merge"
	"dspaddr/internal/model"
	"dspaddr/internal/obs"
)

// DefaultWorkers is the worker-pool size used when Options.Workers is
// zero: the number of CPUs, but never fewer than 8 so that a small
// container still overlaps cache misses with cache hits under load.
const DefaultWorkers = 8

// Request is one allocation job. It mirrors core.Config but replaces
// the Strategy interface with a by-name selection so that requests are
// comparable, serializable and cacheable.
type Request struct {
	// Pattern is the access pattern to allocate.
	Pattern model.Pattern
	// AGU is the register constraint K and modify range M.
	AGU model.AGUSpec
	// InterIteration includes loop-back updates in the objective
	// (core.Config.InterIteration).
	InterIteration bool
	// Strategy names the phase-2 merge heuristic: "greedy" (default),
	// "naive", "smallest" or "optimal". The empty string means greedy.
	Strategy string
}

// strategyFor resolves the request's merge strategy name.
func strategyFor(name string) (merge.Strategy, error) {
	switch name {
	case "", "greedy":
		return merge.Greedy{}, nil
	case "naive":
		return merge.Naive{}, nil
	case "smallest":
		return merge.SmallestTwo{}, nil
	case "optimal":
		return merge.Optimal{}, nil
	default:
		return nil, fmt.Errorf("engine: unknown merge strategy %q", name)
	}
}

// config lowers the request to a core.Config. The strategy name must
// already have been validated.
func (r Request) config() core.Config {
	s, err := strategyFor(r.Strategy)
	if err != nil {
		s = merge.Greedy{}
	}
	return core.Config{AGU: r.AGU, InterIteration: r.InterIteration, Strategy: s}
}

// JobResult is the outcome of one job.
type JobResult struct {
	// Result is the allocation, nil if Err is set.
	Result *core.Result
	// Err reports a failed job: validation errors from the allocator,
	// ErrTimeout past the per-job deadline, or the context error if the
	// submitting context was canceled first.
	Err error
	// CacheHit reports that this job did not run its own solve: the
	// result came from the canonical-pattern cache, or from sharing a
	// concurrent identical job's solve (single-flight).
	CacheHit bool
	// Elapsed is the wall time from dequeue to completion.
	Elapsed time.Duration
}

// ErrTimeout is returned (wrapped) in JobResult.Err when a job exceeds
// the engine's per-job timeout.
var ErrTimeout = fmt.Errorf("engine: job timed out")

// Options configures an Engine.
type Options struct {
	// Workers bounds solver concurrency; 0 means DefaultWorkers.
	Workers int
	// JobTimeout is the per-job solve deadline; 0 disables it. The
	// deadline is threaded into the solver as a context, so a job that
	// outlives it abandons its solve cooperatively (within
	// microseconds) and frees its worker — the late partial work is
	// discarded, it does not populate the cache.
	JobTimeout time.Duration
	// CacheSize is the maximum number of cached canonical results
	// across all shards; 0 means DefaultCacheSize, negative disables
	// result retention (single-flight dedup stays active).
	CacheSize int
	// Faults is the opt-in chaos hook for soak builds: an armed
	// injector can stall or fail solves on the single-flight leader
	// (see internal/faults). nil — the production default — costs one
	// pointer compare per solve and nothing else.
	Faults *faults.Injector
	// SolveHist, when non-nil, receives the latency of every
	// successful leader solve (cache misses only, matching the
	// percentile ring). nil costs one nil check per solve.
	SolveHist *obs.Histogram
	// ShedTarget is the CoDel-style queue-wait target for adaptive
	// load shedding: when the MINIMUM queue wait over a ShedWindow
	// stays above it, Overloaded() reports true and the server sheds
	// its synchronous solve paths. 0 = DefaultShedTarget; negative
	// disables shedding.
	ShedTarget time.Duration
	// ShedWindow is the controller's evaluation interval (0 =
	// DefaultShedWindow).
	ShedWindow time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = DefaultWorkers
		if n := runtime.NumCPU(); n > o.Workers {
			o.Workers = n
		}
	}
	return o
}

// taskKind discriminates the two job shapes a worker can run.
type taskKind uint8

const (
	taskPattern taskKind = iota
	taskLoop
)

// task is one queued unit of work, passed to a worker by value — no
// per-job closure or goroutine is allocated. The worker writes the
// result through out/loopOut, then signals wg (batches) or closes
// done (single submissions).
type task struct {
	ctx     context.Context
	kind    taskKind
	req     Request
	loop    LoopRequest
	out     *JobResult
	loopOut *LoopJobResult
	wg      *sync.WaitGroup
	done    chan struct{}
	// enqueued is the submission time, set on every submission path:
	// the worker turns (dequeue - enqueued) into the queue-wait signal
	// the shed controller runs on, and — when ctx carries an obs.Trace
	// — into an "engine.queue" span.
	enqueued time.Time
}

// Engine runs allocation jobs on a bounded worker pool with caching
// and statistics. Create one with New, submit with Run or RunBatch,
// and release it with Close. All methods are safe for concurrent use.
type Engine struct {
	opts  Options
	jobs  chan task
	wg    sync.WaitGroup
	cache *resultCache
	stats collector
	// shed is the adaptive load-shedding controller; nil when
	// disabled (every method is nil-safe).
	shed *shedController

	// solve and solveLoop are the job executors, replaceable in tests
	// to instrument concurrency without paying for real solves. They
	// run on worker goroutines with the worker's own Solver and must
	// honor ctx if the test wants cancellation semantics.
	solve     func(ctx context.Context, s *core.Solver, r Request) (*core.Result, error)
	solveLoop func(ctx context.Context, s *core.Solver, r LoopRequest) (*core.LoopResult, error)

	closeOnce sync.Once
	closed    chan struct{}
}

// New starts an engine with its worker pool. The caller must Close it
// when done.
func New(opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		opts:   opts,
		jobs:   make(chan task),
		cache:  newResultCache(opts.CacheSize),
		closed: make(chan struct{}),
		solve: func(ctx context.Context, s *core.Solver, r Request) (*core.Result, error) {
			return s.Allocate(ctx, r.Pattern, r.config())
		},
		solveLoop: func(ctx context.Context, s *core.Solver, r LoopRequest) (*core.LoopResult, error) {
			return s.AllocateLoop(ctx, r.Loop, r.config())
		},
	}
	e.stats.workers = opts.Workers
	e.stats.solveHist = opts.SolveHist
	e.shed = newShedController(opts.ShedTarget, opts.ShedWindow, time.Now())
	for i := 0; i < opts.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Close stops accepting jobs and waits for in-flight jobs to drain.
// Pending Run and RunBatch calls racing with Close receive an error
// result; Close is idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.closed) })
	e.wg.Wait()
}

// enqueue hands t to a worker, failing fast if the engine is closed
// or t's context canceled first. The jobs channel is unbuffered, so a
// successful send means a worker has committed to running the task.
func (e *Engine) enqueue(t task) error {
	select {
	case <-e.closed:
		return fmt.Errorf("engine: closed")
	case <-t.ctx.Done():
		return t.ctx.Err()
	case e.jobs <- t:
		return nil
	}
}

// Run submits one job and waits for its result. It returns early with
// an error result if ctx is canceled while the job is still queued or
// solving (the abandoned worker frees itself cooperatively).
func (e *Engine) Run(ctx context.Context, req Request) JobResult {
	res := new(JobResult)
	done := make(chan struct{})
	t := task{ctx: ctx, kind: taskPattern, req: req, out: res, done: done, enqueued: time.Now()}
	if err := e.enqueue(t); err != nil {
		return JobResult{Err: err}
	}
	select {
	case <-done:
		return *res
	case <-ctx.Done():
		return JobResult{Err: ctx.Err()}
	}
}

// RunBatch submits every job and waits for all of them, returning
// results in job order. Individual failures are reported per job; the
// batch itself never fails. Unlike Run, a canceled context does not
// return before every accepted job has settled — workers settle
// canceled jobs promptly via cooperative cancellation — so the
// returned slice is always fully owned by the caller.
func (e *Engine) RunBatch(ctx context.Context, reqs []Request) []JobResult {
	out := make([]JobResult, len(reqs))
	var wg sync.WaitGroup
	wg.Add(len(reqs))
	// One clock read stamps the whole batch: the submit loop below is
	// microseconds end to end, and per-task reads were measurable on
	// the parallel batch path.
	enqueued := time.Now()
	for i := range reqs {
		t := task{ctx: ctx, kind: taskPattern, req: reqs[i], out: &out[i], wg: &wg, enqueued: enqueued}
		if err := e.enqueue(t); err != nil {
			out[i] = JobResult{Err: err}
			wg.Done()
		}
	}
	wg.Wait()
	return out
}

// Stats returns a snapshot of the engine's aggregate statistics.
func (e *Engine) Stats() Stats {
	s := e.stats.snapshot()
	s.CacheEntries = e.cache.len()
	s.CacheCapacity = e.cache.cap()
	s.CacheShards = e.cache.shardsN()
	s.Shedding = e.Overloaded()
	if e.shed != nil {
		s.ShedFlips = e.shed.flips.Load()
	}
	return s
}

// worker is the pool loop: dequeue, run, until Close. Each worker
// owns one reusable core.Solver for the lifetime of the pool — the
// per-solve scratch (distance graph, cover search, merge buffers)
// warms up once and is reused by every subsequent cache miss. The
// jobs channel itself is never closed — senders and workers both
// watch the closed signal instead, so a Run racing with Close can
// never send on a closed channel.
func (e *Engine) worker() {
	defer e.wg.Done()
	solver := core.NewSolver()
	var tick uint
	for {
		select {
		case <-e.closed:
			return
		case t := <-e.jobs:
			tick++
			e.runTask(solver, t, tick)
		}
	}
}

// shedSampleMask subsamples the untraced dequeue path 1-in-8: the
// shed controller is an estimator over thousands of sojourns per
// window, and skipping the clock read on the other seven keeps the
// hot path as cheap as it was before shedding existed. A sampled
// minimum can only overestimate the true one, which errs toward
// shedding under overload — the safe direction.
const shedSampleMask = 7

// runTask executes one task on a worker and delivers its result.
// tick is the calling worker's local dequeue counter (contention-free
// sampling).
func (e *Engine) runTask(solver *core.Solver, t task, tick uint) {
	if !t.enqueued.IsZero() {
		if tr := obs.FromContext(t.ctx); tr != nil {
			now := time.Now()
			e.shed.observe(now.Sub(t.enqueued), now)
			tr.AddSpan("engine.queue", t.enqueued, now)
		} else if e.shed != nil && tick&shedSampleMask == 0 {
			now := time.Now()
			e.shed.observe(now.Sub(t.enqueued), now)
		}
	}
	switch t.kind {
	case taskPattern:
		*t.out = e.processPattern(t.ctx, solver, t.req)
	case taskLoop:
		*t.loopOut = e.processLoop(t.ctx, solver, t.loop)
	}
	if t.wg != nil {
		t.wg.Done()
	}
	if t.done != nil {
		close(t.done)
	}
}

// processPattern runs one single-pattern job on a worker goroutine:
// validation, cache lookup, then a bounded solve on a miss.
func (e *Engine) processPattern(ctx context.Context, solver *core.Solver, req Request) JobResult {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		e.stats.canceledJob()
		return JobResult{Err: err, Elapsed: time.Since(start)}
	}
	if _, err := strategyFor(req.Strategy); err != nil {
		e.stats.failed()
		return JobResult{Err: err, Elapsed: time.Since(start)}
	}
	tr := obs.FromContext(ctx)
	sp := tr.StartSpan("key.build")
	key := canonicalKey(req)
	sp.End()
	v, hit, err, elapsed := e.solveKeyed(ctx, solver, key, task{kind: taskPattern, req: req}, start)
	if err != nil {
		return JobResult{Err: err, Elapsed: elapsed}
	}
	// Always hand out a rewritten copy — the solved value lives in the
	// cache (and in concurrent followers), so the caller must never
	// see the shared pointer.
	sp = tr.StartSpan("result.rewrite")
	out := rewrite(v.(*core.Result), req)
	sp.End()
	return JobResult{Result: out, CacheHit: hit, Elapsed: elapsed}
}

// solveKeyed is the shared cache-then-solve path of pattern and loop
// jobs, running on a worker goroutine.
//
// The first job with a given canonical key becomes the flight's
// leader and runs the solver on its own worker (no spawned
// goroutine), under a context bounded by the job context and the
// per-job timeout; concurrent followers wait for its result and
// report as cache hits. A leader that abandons its solve
// (cancellation or timeout — the solver unwinds cooperatively)
// finishes the flight with an abort marker: followers that are still
// interested retry, and one of them becomes the new leader. Followers
// that give up (their own cancellation or timeout) simply leave —
// solver concurrency stays bounded by the worker pool because solves
// only ever run on leader workers.
func (e *Engine) solveKeyed(ctx context.Context, solver *core.Solver, key cacheKey, t task, start time.Time) (any, bool, error, time.Duration) {
	var timeout <-chan time.Time
	var timer *time.Timer
	tr := obs.FromContext(ctx)
	for {
		if err := ctx.Err(); err != nil {
			e.stats.canceledJob()
			return nil, false, err, time.Since(start)
		}
		sp := tr.StartSpan("cache.lookup")
		v, hit, f, leader := e.cache.join(key)
		sp.Attr("shard", int64(e.cache.shardIndex(key)))
		if hit {
			sp.Note("hit").End()
			e.stats.hit()
			return v, true, nil, time.Since(start)
		}
		if leader {
			sp.Note("miss-leader").End()
			v, err := e.runLeader(ctx, solver, key, f, t, start)
			elapsed := time.Since(start)
			switch {
			case err == nil:
				e.stats.solved(elapsed)
				return v, false, nil, elapsed
			case errors.Is(err, errSolveAborted):
				if ctxErr := ctx.Err(); ctxErr != nil {
					e.stats.canceledJob()
					return nil, false, ctxErr, elapsed
				}
				e.stats.timedOut()
				return nil, false, fmt.Errorf("%w after %v", ErrTimeout, e.opts.JobTimeout), elapsed
			default:
				e.stats.failed()
				return nil, false, err, elapsed
			}
		}
		// Follower: wait for the leader's result, our own deadline or
		// our own cancellation, whichever first. Leaving early frees
		// this worker; the flight lives on its leader's worker.
		sp.Note("follower").End()
		if timer == nil && e.opts.JobTimeout > 0 {
			timer = time.NewTimer(e.opts.JobTimeout - time.Since(start))
			defer timer.Stop()
			timeout = timer.C
		}
		wait := tr.StartSpan("flight.wait")
		select {
		case <-f.done:
			if errors.Is(f.err, errSolveAborted) {
				wait.Note("retry").End()
				continue // leader gave up; retry, possibly as new leader
			}
			if f.err != nil {
				wait.Note("error").End()
				e.stats.failed()
				return nil, false, f.err, time.Since(start)
			}
			wait.Note("dedup").End()
			e.stats.dedupedHit()
			return f.v, true, nil, time.Since(start)
		case <-timeout:
			wait.Note("timeout").End()
			e.stats.timedOut()
			return nil, false, fmt.Errorf("%w after %v", ErrTimeout, e.opts.JobTimeout), time.Since(start)
		case <-ctx.Done():
			wait.Note("canceled").End()
			e.stats.canceledJob()
			return nil, false, ctx.Err(), time.Since(start)
		}
	}
}

// runLeader executes the flight's solve on the calling worker and
// completes the flight. The solve context combines the job context
// with the per-job deadline (measured from dequeue); a solve that
// returns because that context fired is mapped to errSolveAborted so
// followers know to retry rather than propagate a stranger's
// cancellation.
func (e *Engine) runLeader(ctx context.Context, solver *core.Solver, key cacheKey, f *flight, t task, start time.Time) (any, error) {
	solveCtx := ctx
	var cancel context.CancelFunc
	if e.opts.JobTimeout > 0 {
		solveCtx, cancel = context.WithDeadline(ctx, start.Add(e.opts.JobTimeout))
	}
	sp := obs.FromContext(ctx).StartSpan("solve")
	var v any
	var err error
	// Soak builds may arm a fault injector; it runs on the leader so
	// an injected stall or failure is shared by the whole flight,
	// exactly like an organic slow or failing solve.
	if inj := e.opts.Faults; inj != nil {
		err = inj.BeforeSolve(solveCtx)
	}
	if err == nil {
		if t.kind == taskPattern {
			v, err = e.solve(solveCtx, solver, t.req)
		} else {
			v, err = e.solveLoop(solveCtx, solver, t.loop)
		}
	}
	if cancel != nil {
		cancel()
	}
	if err != nil && solveCtx.Err() != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		err = errSolveAborted
	}
	switch {
	case err == nil:
		sp.Note("ok")
	case errors.Is(err, errSolveAborted):
		sp.Note("aborted")
	default:
		sp.Note("error")
	}
	sp.End()
	e.cache.complete(key, f, v, err)
	return v, err
}
