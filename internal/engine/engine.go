// Package engine is the concurrent batch allocation engine layered on
// top of the single-request allocator in package core.
//
// An Engine owns a bounded pool of worker goroutines, a
// canonicalized-pattern result cache and aggregate serving statistics.
// Jobs — (pattern, configuration) pairs — are submitted one at a time
// with Run or many at once with RunBatch; either way they funnel
// through the same pool, so total solver concurrency never exceeds the
// configured worker count regardless of how many callers submit
// concurrently.
//
// Identical access patterns are common across the loops of real DSP
// programs (the same FIR tap structure appears in every filter), so the
// cache keys each job by a translation-normalized form of its pattern
// together with the allocation parameters. A hit skips the path-cover
// and merge phases entirely and costs one map lookup plus a shallow
// result rewrite; see cache.go for the canonicalization argument.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dspaddr/internal/core"
	"dspaddr/internal/merge"
	"dspaddr/internal/model"
)

// DefaultWorkers is the worker-pool size used when Options.Workers is
// zero: the number of CPUs, but never fewer than 8 so that a small
// container still overlaps cache misses with cache hits under load.
const DefaultWorkers = 8

// Request is one allocation job. It mirrors core.Config but replaces
// the Strategy interface with a by-name selection so that requests are
// comparable, serializable and cacheable.
type Request struct {
	// Pattern is the access pattern to allocate.
	Pattern model.Pattern
	// AGU is the register constraint K and modify range M.
	AGU model.AGUSpec
	// InterIteration includes loop-back updates in the objective
	// (core.Config.InterIteration).
	InterIteration bool
	// Strategy names the phase-2 merge heuristic: "greedy" (default),
	// "naive", "smallest" or "optimal". The empty string means greedy.
	Strategy string
}

// strategyFor resolves the request's merge strategy name.
func strategyFor(name string) (merge.Strategy, error) {
	switch name {
	case "", "greedy":
		return merge.Greedy{}, nil
	case "naive":
		return merge.Naive{}, nil
	case "smallest":
		return merge.SmallestTwo{}, nil
	case "optimal":
		return merge.Optimal{}, nil
	default:
		return nil, fmt.Errorf("engine: unknown merge strategy %q", name)
	}
}

// config lowers the request to a core.Config. The strategy name must
// already have been validated.
func (r Request) config() core.Config {
	s, err := strategyFor(r.Strategy)
	if err != nil {
		s = merge.Greedy{}
	}
	return core.Config{AGU: r.AGU, InterIteration: r.InterIteration, Strategy: s}
}

// JobResult is the outcome of one job.
type JobResult struct {
	// Result is the allocation, nil if Err is set.
	Result *core.Result
	// Err reports a failed job: validation errors from the allocator,
	// ErrTimeout past the per-job deadline, or the context error if the
	// submitting context was canceled first.
	Err error
	// CacheHit reports that this job did not run its own solve: the
	// result came from the canonical-pattern cache, or from sharing a
	// concurrent identical job's solve (single-flight).
	CacheHit bool
	// Elapsed is the wall time from dequeue to completion.
	Elapsed time.Duration
}

// ErrTimeout is returned (wrapped) in JobResult.Err when a job exceeds
// the engine's per-job timeout.
var ErrTimeout = fmt.Errorf("engine: job timed out")

// Options configures an Engine.
type Options struct {
	// Workers bounds solver concurrency; 0 means DefaultWorkers.
	Workers int
	// JobTimeout is the per-job solve deadline; 0 disables it. On
	// timeout the waiting caller gives up immediately (ErrTimeout),
	// but the worker stays occupied until the abandoned solve
	// finishes — solver concurrency remains bounded by Workers even
	// under a stream of pathological jobs — and the late result still
	// populates the cache for future requests.
	JobTimeout time.Duration
	// CacheSize is the maximum number of cached canonical results;
	// 0 means DefaultCacheSize, negative disables caching.
	CacheSize int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = DefaultWorkers
		if n := runtime.NumCPU(); n > o.Workers {
			o.Workers = n
		}
	}
	return o
}

// task is one queued unit of work; run executes on a worker goroutine
// and replies through a channel it captured.
type task struct {
	ctx context.Context
	run func(ctx context.Context)
}

// Engine runs allocation jobs on a bounded worker pool with caching
// and statistics. Create one with New, submit with Run or RunBatch,
// and release it with Close. All methods are safe for concurrent use.
type Engine struct {
	opts  Options
	jobs  chan task
	wg    sync.WaitGroup
	cache *resultCache
	stats collector

	// flights dedups concurrent identical solves (single-flight): the
	// first job with a given canonical key becomes the leader and runs
	// the solver; concurrent followers wait for its result instead of
	// solving again.
	flightMu sync.Mutex
	flights  map[string]*flight

	// solve is the job executor, replaceable in tests to instrument
	// concurrency without paying for real solves.
	solve func(Request) (*core.Result, error)

	closeOnce sync.Once
	closed    chan struct{}
}

// New starts an engine with its worker pool. The caller must Close it
// when done.
func New(opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		opts:    opts,
		jobs:    make(chan task),
		cache:   newResultCache(opts.CacheSize),
		flights: make(map[string]*flight),
		closed:  make(chan struct{}),
		solve: func(r Request) (*core.Result, error) {
			return core.Allocate(r.Pattern, r.config())
		},
	}
	e.stats.workers = opts.Workers
	for i := 0; i < opts.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Close stops accepting jobs and waits for in-flight jobs to drain.
// Pending Run and RunBatch calls racing with Close receive an error
// result; Close is idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.closed) })
	e.wg.Wait()
}

// enqueue hands run to a worker, failing fast if the engine is closed
// or ctx canceled first.
func (e *Engine) enqueue(ctx context.Context, run func(ctx context.Context)) error {
	select {
	case <-e.closed:
		return fmt.Errorf("engine: closed")
	case <-ctx.Done():
		return ctx.Err()
	case e.jobs <- task{ctx: ctx, run: run}:
		return nil
	}
}

// Run submits one job and waits for its result. It returns early with
// an error result if ctx is canceled while the job is still queued.
func (e *Engine) Run(ctx context.Context, req Request) JobResult {
	done := make(chan JobResult, 1)
	err := e.enqueue(ctx, func(ctx context.Context) {
		e.processPattern(ctx, req, func(r JobResult) { done <- r })
	})
	if err != nil {
		return JobResult{Err: err}
	}
	select {
	case r := <-done:
		return r
	case <-ctx.Done():
		return JobResult{Err: ctx.Err()}
	}
}

// RunBatch submits every job and waits for all of them, returning
// results in job order. Individual failures are reported per job; the
// batch itself never fails.
func (e *Engine) RunBatch(ctx context.Context, reqs []Request) []JobResult {
	out := make([]JobResult, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			out[i] = e.Run(ctx, req)
		}(i, req)
	}
	wg.Wait()
	return out
}

// Stats returns a snapshot of the engine's aggregate statistics.
func (e *Engine) Stats() Stats {
	s := e.stats.snapshot()
	s.CacheEntries = e.cache.len()
	return s
}

// worker is the pool loop: dequeue, run, until Close. The jobs channel
// itself is never closed — senders and workers both watch the closed
// signal instead, so a Run racing with Close can never send on a
// closed channel.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.closed:
			return
		case t := <-e.jobs:
			t.run(t.ctx)
		}
	}
}

// processPattern runs one single-pattern job on a worker goroutine:
// validation, cache lookup, then a bounded solve on a miss. reply is
// called exactly once.
func (e *Engine) processPattern(ctx context.Context, req Request, reply func(JobResult)) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		e.stats.canceledJob()
		reply(JobResult{Err: err, Elapsed: time.Since(start)})
		return
	}
	if _, err := strategyFor(req.Strategy); err != nil {
		e.stats.failed()
		reply(JobResult{Err: err, Elapsed: time.Since(start)})
		return
	}
	e.solveKeyed(ctx, canonicalKey(req),
		func() (any, error) { return e.solve(req) },
		func(v any, hit bool, err error, elapsed time.Duration) {
			if err != nil {
				reply(JobResult{Err: err, Elapsed: elapsed})
				return
			}
			// Always hand out a rewritten copy — the solved value lives
			// in the cache (and in concurrent followers), so the caller
			// must never see the shared pointer.
			reply(JobResult{Result: rewrite(v.(*core.Result), req), CacheHit: hit, Elapsed: elapsed})
		})
}

// flight is one in-progress solve shared by a leader and any
// concurrent followers. v and err are written once before done is
// closed; the channel close publishes them.
type flight struct {
	done chan struct{}
	v    any
	err  error
}

// solveKeyed is the shared cache-then-solve path of pattern and loop
// jobs. It runs on a worker goroutine and calls reply exactly once —
// possibly before returning: a timeout or cancellation answers the
// caller immediately, but solveKeyed itself only returns once the
// solve it is attached to has finished, so total solver concurrency
// stays bounded by the worker pool. Concurrent jobs with the same key
// share a single solve (single-flight); followers report as cache
// hits. A successful solve populates the cache even if every waiter
// has already given up.
func (e *Engine) solveKeyed(ctx context.Context, key string, solve func() (any, error), reply func(v any, hit bool, err error, elapsed time.Duration)) {
	start := time.Now()
	if v, ok := e.cache.get(key); ok {
		e.stats.hit()
		reply(v, true, nil, time.Since(start))
		return
	}

	e.flightMu.Lock()
	f, follower := e.flights[key]
	if !follower {
		f = &flight{done: make(chan struct{})}
		e.flights[key] = f
		e.flightMu.Unlock()
		go func() {
			f.v, f.err = solve()
			if f.err == nil {
				e.cache.put(key, f.v)
			}
			e.flightMu.Lock()
			delete(e.flights, key)
			e.flightMu.Unlock()
			close(f.done)
		}()
	} else {
		e.flightMu.Unlock()
	}

	var deadline <-chan time.Time
	if e.opts.JobTimeout > 0 {
		timer := time.NewTimer(e.opts.JobTimeout)
		defer timer.Stop()
		deadline = timer.C
	}
	cancel := ctx.Done()
	replied := false
	for {
		select {
		case <-f.done:
			if !replied {
				elapsed := time.Since(start)
				switch {
				case f.err != nil:
					e.stats.failed()
					reply(nil, false, f.err, elapsed)
				case follower:
					e.stats.dedupedHit()
					reply(f.v, true, nil, elapsed)
				default:
					e.stats.solved(elapsed)
					reply(f.v, false, nil, elapsed)
				}
			}
			return
		case <-deadline:
			e.stats.timedOut()
			reply(nil, false, fmt.Errorf("%w after %v", ErrTimeout, e.opts.JobTimeout), time.Since(start))
			replied, deadline, cancel = true, nil, nil
		case <-cancel:
			e.stats.canceledJob()
			reply(nil, false, ctx.Err(), time.Since(start))
			replied, deadline, cancel = true, nil, nil
		}
	}
}
