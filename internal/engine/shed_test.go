package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"dspaddr/internal/core"
)

// Shed controller tests drive the windowed-minimum logic with a
// synthetic clock; only the end-to-end test touches a real engine.

func TestShedTripsOnStandingQueue(t *testing.T) {
	base := time.Now()
	s := newShedController(50*time.Millisecond, 100*time.Millisecond, base)
	// A full window where even the best queue wait exceeds the target.
	for i := 0; i <= 11; i++ {
		s.observe(80*time.Millisecond, base.Add(time.Duration(i)*10*time.Millisecond))
	}
	if !s.overloaded(base.Add(110 * time.Millisecond)) {
		t.Fatal("standing queue did not trip the shed verdict")
	}
	// A window whose minimum dips under the target clears it: the
	// queue drained at least once.
	base = base.Add(110 * time.Millisecond)
	for i := 0; i <= 11; i++ {
		wait := 80 * time.Millisecond
		if i == 5 {
			wait = time.Millisecond // one drain is enough
		}
		s.observe(wait, base.Add(time.Duration(i)*10*time.Millisecond))
	}
	if s.overloaded(base.Add(110 * time.Millisecond)) {
		t.Fatal("a drained queue kept shedding")
	}
	if flips := s.flips.Load(); flips != 2 {
		t.Fatalf("flips = %d, want 2 (on and off)", flips)
	}
}

func TestShedBusyButDrainingStaysOff(t *testing.T) {
	base := time.Now()
	s := newShedController(50*time.Millisecond, 100*time.Millisecond, base)
	// High p99-style waits but frequent near-zero minima: busy, fine.
	for i := 0; i <= 40; i++ {
		wait := time.Duration(i%4) * 60 * time.Millisecond // 0, 60, 120, 180ms
		s.observe(wait, base.Add(time.Duration(i)*10*time.Millisecond))
	}
	if s.overloaded(base.Add(410 * time.Millisecond)) {
		t.Fatal("draining queue tripped the shed verdict")
	}
}

func TestShedVerdictExpiresWhenStale(t *testing.T) {
	base := time.Now()
	s := newShedController(50*time.Millisecond, 100*time.Millisecond, base)
	for i := 0; i <= 11; i++ {
		s.observe(80*time.Millisecond, base.Add(time.Duration(i)*10*time.Millisecond))
	}
	at := base.Add(110 * time.Millisecond)
	if !s.overloaded(at) {
		t.Fatal("verdict did not trip")
	}
	// No dequeues for longer than the staleness bound: fail open.
	if s.overloaded(at.Add(shedStaleAfter + time.Millisecond)) {
		t.Fatal("stale verdict did not expire")
	}
}

func TestShedDisabledAndNil(t *testing.T) {
	if s := newShedController(-1, 0, time.Now()); s != nil {
		t.Fatal("negative target should disable the controller")
	}
	var s *shedController
	s.observe(time.Hour, time.Now()) // must not panic
	if s.overloaded(time.Now()) {
		t.Fatal("nil controller reported overload")
	}
}

// TestEngineOverloadedEndToEnd floods a one-worker engine with slow
// solves so real tasks queue, and asserts Overloaded flips on — then
// back off once the queue drains.
func TestEngineOverloadedEndToEnd(t *testing.T) {
	e := New(Options{
		Workers:    1,
		CacheSize:  -1,
		ShedTarget: 5 * time.Millisecond,
		ShedWindow: 20 * time.Millisecond,
	})
	defer e.Close()
	e.solve = func(ctx context.Context, s *core.Solver, r Request) (*core.Result, error) {
		time.Sleep(15 * time.Millisecond) // every solve outlasts the target
		return s.Allocate(ctx, r.Pattern, r.config())
	}

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct patterns so nothing dedupes into one flight.
			e.Run(context.Background(), testRequest(i+1, 0, 2))
		}(i)
	}
	wg.Wait()
	if !e.Overloaded() {
		t.Fatal("a standing queue on a one-worker pool never tripped Overloaded")
	}
	// Quiet period: the verdict must expire (staleness) rather than
	// shed forever on history.
	deadline := time.Now().Add(2 * shedStaleAfter)
	for e.Overloaded() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if e.Overloaded() {
		t.Fatal("shed verdict never cleared after the flood")
	}
	if s := e.Stats(); s.ShedFlips == 0 {
		t.Fatal("ShedFlips never counted the transitions")
	}
}
