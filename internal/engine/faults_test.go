package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"dspaddr/internal/faults"
	"dspaddr/internal/model"
)

// TestFaultInjectionErrors: an armed error schedule surfaces as
// ordinary job failures (counted in Errors), and an injected failure
// is never cached — the next identical request solves for real.
func TestFaultInjectionErrors(t *testing.T) {
	inj, err := faults.Parse("error=1") // every solve fails
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 2, Faults: inj})
	defer e.Close()
	req := Request{
		Pattern: model.Pattern{Array: "A", Stride: 1, Offsets: []int{1, 0, 2, -1, 1, 0, -2}},
		AGU:     model.AGUSpec{Registers: 2, ModifyRange: 1},
	}
	res := e.Run(context.Background(), req)
	if !errors.Is(res.Err, faults.ErrInjected) {
		t.Fatalf("want injected error, got %v", res.Err)
	}
	// Disarm: the same request must now succeed — the failure did not
	// poison the cache.
	if err := inj.Rearm("none"); err != nil {
		t.Fatal(err)
	}
	res = e.Run(context.Background(), req)
	if res.Err != nil {
		t.Fatalf("after disarm: %v", res.Err)
	}
	if res.Result.Cost != 0 {
		t.Fatalf("paper example cost %d, want 0", res.Result.Cost)
	}
	if s := e.Stats(); s.Errors == 0 {
		t.Errorf("injected failure not counted: %+v", s)
	}
}

// TestFaultInjectionDelayOnLeaderOnly: an injected stall slows the
// single-flight leader; a subsequent identical request hits the cache
// and pays nothing.
func TestFaultInjectionDelayOnLeaderOnly(t *testing.T) {
	inj, err := faults.Parse("delay=50ms")
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 2, Faults: inj})
	defer e.Close()
	req := Request{
		Pattern: model.Pattern{Array: "A", Stride: 1, Offsets: []int{3, 1, 2}},
		AGU:     model.AGUSpec{Registers: 1, ModifyRange: 1},
	}
	start := time.Now()
	if res := e.Run(context.Background(), req); res.Err != nil {
		t.Fatal(res.Err)
	}
	if cold := time.Since(start); cold < 50*time.Millisecond {
		t.Fatalf("cold solve returned in %v, injected delay is 50ms", cold)
	}
	start = time.Now()
	res := e.Run(context.Background(), req)
	if res.Err != nil || !res.CacheHit {
		t.Fatalf("warm request: hit=%v err=%v", res.CacheHit, res.Err)
	}
	if warm := time.Since(start); warm > 40*time.Millisecond {
		t.Fatalf("cache hit took %v — injection leaked past the leader", warm)
	}
}
