// Fuzz property for the binary canonical key: two pattern requests
// share a key if and only if one pattern is a pure translation of the
// other (same stride, AGU, objective and strategy). The old string
// key had this property by construction — it spelled out the
// normalized offsets; the binary key compresses them into a 128-bit
// digest, so a mixing mistake could silently merge distinct patterns.
// The fuzzer searches for exactly that: any pair where digest equality
// disagrees with semantic equivalence.

package engine

import (
	"testing"

	"dspaddr/internal/model"
)

// fuzzPattern decodes raw bytes into a pattern: each byte is one
// signed offset, the stride is folded into a small positive range.
func fuzzPattern(raw []byte, stride int) model.Pattern {
	offs := make([]int, len(raw))
	for i, b := range raw {
		offs[i] = int(int8(b))
	}
	return model.Pattern{Array: "A", Stride: 1 + abs(stride)%7, Offsets: offs}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// translationEquivalent reports whether two patterns are pure
// translations of each other with the same stride — the semantic
// condition under which results transfer by rewriting, i.e. the
// ground truth the cache key must reproduce.
func translationEquivalent(a, b model.Pattern) bool {
	if a.Stride != b.Stride || len(a.Offsets) != len(b.Offsets) {
		return false
	}
	if len(a.Offsets) == 0 {
		return true
	}
	delta := b.Offsets[0] - a.Offsets[0]
	for i := range a.Offsets {
		if b.Offsets[i]-a.Offsets[i] != delta {
			return false
		}
	}
	return true
}

func FuzzCanonicalKey(f *testing.F) {
	f.Add([]byte{1, 0, 2, 255}, []byte{8, 7, 9, 6}, 1, 1, 5)
	f.Add([]byte{1, 0, 2}, []byte{1, 0, 2}, 1, 2, -3)
	f.Add([]byte{0}, []byte{0, 0}, 1, 1, 0)
	f.Add([]byte{3, 3, 3, 3}, []byte{250, 250, 250, 250}, 2, 2, 100)
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, strideA, strideB, shift int) {
		a := fuzzPattern(rawA, strideA)
		b := fuzzPattern(rawB, strideB)
		if len(a.Offsets) == 0 || len(b.Offsets) == 0 ||
			len(a.Offsets) > 64 || len(b.Offsets) > 64 {
			t.Skip()
		}
		agu := model.AGUSpec{Registers: 2, ModifyRange: 1}
		reqA := Request{Pattern: a, AGU: agu}
		reqB := Request{Pattern: b, AGU: agu}

		want := translationEquivalent(a, b)
		got := canonicalKey(reqA) == canonicalKey(reqB)
		if want != got {
			t.Fatalf("key equality %v, translation equivalence %v\na=%v\nb=%v", got, want, a, b)
		}

		// Translation invariance directly: shifting every offset of a
		// by the same constant must never change the key.
		shifted := a
		shifted.Offsets = make([]int, len(a.Offsets))
		for i, o := range a.Offsets {
			shifted.Offsets[i] = o + shift%1000
		}
		reqShifted := reqA
		reqShifted.Pattern = shifted
		if canonicalKey(reqA) != canonicalKey(reqShifted) {
			t.Fatalf("translation by %d changed the key: %v", shift%1000, a)
		}

		// Every allocation parameter must separate keys on its own.
		perturb := func(mut func(*Request)) Request {
			r := reqA
			mut(&r)
			return r
		}
		for name, r := range map[string]Request{
			"registers":   perturb(func(r *Request) { r.AGU.Registers++ }),
			"modifyRange": perturb(func(r *Request) { r.AGU.ModifyRange++ }),
			"wrap":        perturb(func(r *Request) { r.InterIteration = !r.InterIteration }),
			"strategy":    perturb(func(r *Request) { r.Strategy = "optimal" }),
		} {
			if canonicalKey(r) == canonicalKey(reqA) {
				t.Fatalf("perturbing %s did not change the key", name)
			}
		}
		// The default strategy spellings are the same solve and must
		// share an entry.
		spelled := perturb(func(r *Request) { r.Strategy = "greedy" })
		if canonicalKey(spelled) != canonicalKey(reqA) {
			t.Fatal(`"" and "greedy" must share a key`)
		}
	})
}
