// Canonicalized-pattern result cache: binary keys, N-way sharding,
// integrated single-flight.
//
// Every quantity the allocator computes — distance-graph edges, path
// covers, merge costs, the final Assignment (which holds access
// *indices*, not addresses) — depends only on pairwise offset
// differences Offsets[j]-Offsets[i] and on the stride, never on
// absolute offsets. Translating every offset of a pattern by the same
// constant therefore yields a byte-identical Result up to the echoed
// Pattern itself. The cache exploits this: keys normalize the pattern
// so its first offset is zero (and drop the informational array name),
// letting A[i], A[i+1] share an entry with B[i+7], B[i+8].
//
// Keys are fixed-size binary values, not strings: the normalized
// offset sequence is folded into a 128-bit digest (two independent
// 64-bit mix chains) and the allocation parameters are packed beside
// it, so key construction allocates nothing even on the cache-hit
// fast path. FuzzCanonicalKey guards the translation-iff property
// against digest mistakes.
//
// The cache is sharded 2^k ways by digest, one mutex, one LRU list
// and one single-flight table per shard, so concurrent hits on a warm
// cache stop serializing on a single global lock and the former
// separate flight mutex disappears entirely.

package engine

import (
	"errors"
	"runtime"
	"sync"

	"dspaddr/internal/core"
)

// DefaultCacheSize is the total entry cap (across all shards) used
// when Options.CacheSize is 0.
const DefaultCacheSize = 4096

// cacheKey is the fixed-size binary canonical key: a 128-bit digest of
// the translation-normalized access sequence (plus stride and job
// kind) alongside the packed allocation parameters. Keys are
// comparable and hash directly as map keys; building one performs no
// allocation.
type cacheKey struct {
	h1, h2      uint64
	registers   int32
	modifyRange int32
	flags       uint8
	strategy    uint8
}

const (
	// keyFlagWrap marks the inter-iteration objective.
	keyFlagWrap uint8 = 1 << 0
	// keyFlagLoop separates whole-loop keys from pattern keys.
	keyFlagLoop uint8 = 1 << 1
)

// strategyCode packs the merge-strategy name into one byte. "" and
// "greedy" deliberately share a code — they select the same solve, so
// unlike the old string keys they now share a cache entry too. The
// second result is false for unknown names (rejected before keys are
// built).
func strategyCode(name string) (uint8, bool) {
	switch name {
	case "", "greedy":
		return 0, true
	case "naive":
		return 1, true
	case "smallest":
		return 2, true
	case "optimal":
		return 3, true
	default:
		return 0, false
	}
}

// digest is a 128-bit running hash: two 64-bit splitmix chains seeded
// differently and fed transformed copies of each value, so a pair
// collision requires both independent chains to collide at once.
type digest struct{ h1, h2 uint64 }

func newDigest() digest {
	return digest{h1: 0x9e3779b97f4a7c15, h2: 0xc2b2ae3d27d4eb4f}
}

// mix64 is the splitmix64 finalizer, a full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (d *digest) mixInt(v int) {
	x := uint64(int64(v))
	d.h1 = mix64(d.h1 ^ x)
	d.h2 = mix64(d.h2 ^ x*0xff51afd7ed558ccd)
}

// canonicalKey builds the cache key of a pattern job: the
// translation-normalized offset sequence digested with the stride,
// plus every allocation parameter that influences the result.
func canonicalKey(req Request) cacheKey {
	d := newDigest()
	offs := req.Pattern.Offsets
	base := 0
	if len(offs) > 0 {
		base = offs[0]
	}
	for _, o := range offs {
		d.mixInt(o - base)
	}
	d.mixInt(len(offs))
	d.mixInt(req.Pattern.Stride)
	code, _ := strategyCode(req.Strategy)
	var flags uint8
	if req.InterIteration {
		flags |= keyFlagWrap
	}
	return cacheKey{
		h1:          d.h1,
		h2:          d.h2,
		registers:   int32(req.AGU.Registers),
		modifyRange: int32(req.AGU.ModifyRange),
		flags:       flags,
		strategy:    code,
	}
}

// rewrite adapts a cached canonical result to the requesting job:
// same allocation, but echoing the caller's pattern and configuration.
// The assignment is cloned so callers can't corrupt the cached entry.
func rewrite(cached *core.Result, req Request) *core.Result {
	out := *cached
	out.Pattern = req.Pattern
	out.Config = req.config()
	out.Assignment = cached.Assignment.Clone()
	return &out
}

// flight is one in-progress solve shared by a leader and any
// concurrent followers with the same key. v and err are written by
// complete before done is closed; the channel close publishes them.
// A flight finished with errSolveAborted carries no result — its
// leader abandoned the solve (cancellation or timeout) and followers
// retry, one of them becoming the new leader.
type flight struct {
	done chan struct{}
	v    any
	err  error
}

// errSolveAborted marks a flight whose leader abandoned the solve; it
// never escapes the engine.
var errSolveAborted = errors.New("engine: solve abandoned by canceled leader")

// cacheEntry is one intrusive LRU node.
type cacheEntry struct {
	key        cacheKey
	res        any
	prev, next *cacheEntry
}

// cacheShard is one lock domain: an LRU entry map plus the
// single-flight table for the keys that hash here.
type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	flights map[cacheKey]*flight
	head    *cacheEntry // most recently used
	tail    *cacheEntry // least recently used
	size    int
	max     int
}

// resultCache is the sharded LRU of solved canonical results. Shard
// selection uses the key digest's low bits; with caching disabled
// (CacheSize < 0) the shards still run single-flight deduplication,
// they just never retain results.
type resultCache struct {
	shards   []cacheShard
	mask     uint64
	capacity int
	disabled bool
}

// newResultCache sizes the cache: 0 means DefaultCacheSize, negative
// disables result retention (single-flight stays active). The shard
// count is the power of two nearest above twice the CPU count,
// clamped to [8, 64] — and halved down to the entry cap when the
// configured size is smaller than that, so a tiny cache degrades to
// fewer shards instead of rounding its capacity up. The per-shard
// caps sum to exactly the configured size: the total entry bound is
// never exceeded and CacheEntries can never pass CacheCapacity.
func newResultCache(size int) *resultCache {
	disabled := size < 0
	if size <= 0 {
		size = DefaultCacheSize
	}
	n := shardCount()
	for n > 1 && n > size {
		n >>= 1
	}
	c := &resultCache{
		shards:   make([]cacheShard, n),
		mask:     uint64(n - 1),
		capacity: size,
		disabled: disabled,
	}
	if disabled {
		c.capacity = 0
	}
	perShard, extra := size/n, size%n
	for i := range c.shards {
		s := &c.shards[i]
		s.max = perShard
		if i < extra {
			s.max++
		}
		s.flights = make(map[cacheKey]*flight)
		if !disabled {
			s.entries = make(map[cacheKey]*cacheEntry)
		}
	}
	return c
}

func shardCount() int {
	n := 1
	for n < 2*runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	if n < 8 {
		n = 8
	}
	if n > 64 {
		n = 64
	}
	return n
}

func (c *resultCache) shard(k cacheKey) *cacheShard { return &c.shards[k.h1&c.mask] }

// shardIndex exposes the shard a key maps to, for trace annotation.
func (c *resultCache) shardIndex(k cacheKey) int { return int(k.h1 & c.mask) }

// get returns the cached result for key, marking it most recently
// used.
func (c *resultCache) get(k cacheKey) (any, bool) {
	if c.disabled {
		return nil, false
	}
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	s.moveToFront(e)
	v := e.res
	s.mu.Unlock()
	return v, true
}

// join is the atomic miss path: under one shard lock it rechecks the
// cache (a result may have landed since the caller's get), attaches
// to an in-progress flight for the key, or — neither — opens a new
// flight with the caller as leader. Exactly one of the return shapes
// holds: (v, true, nil, false) cache hit; (nil, false, f, false)
// follower of f; (nil, false, f, true) leader of the new flight f.
func (c *resultCache) join(k cacheKey) (v any, hit bool, f *flight, leader bool) {
	s := c.shard(k)
	s.mu.Lock()
	if !c.disabled {
		if e, ok := s.entries[k]; ok {
			s.moveToFront(e)
			v = e.res
			s.mu.Unlock()
			return v, true, nil, false
		}
	}
	if f = s.flights[k]; f != nil {
		s.mu.Unlock()
		return nil, false, f, false
	}
	f = &flight{done: make(chan struct{})}
	s.flights[k] = f
	s.mu.Unlock()
	return nil, false, f, true
}

// complete finishes a flight: the result is published to followers
// via the done close, and a successful solve is inserted into the
// shard's LRU (an aborted or failed one is not).
func (c *resultCache) complete(k cacheKey, f *flight, v any, err error) {
	s := c.shard(k)
	s.mu.Lock()
	delete(s.flights, k)
	if err == nil && !c.disabled {
		s.insert(k, v)
	}
	s.mu.Unlock()
	f.v, f.err = v, err
	close(f.done)
}

// put inserts a solved result directly, bypassing the flight
// protocol; the engine caches through complete, put serves tests and
// future warm-start loading.
func (c *resultCache) put(k cacheKey, v any) {
	if c.disabled {
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	s.insert(k, v)
	s.mu.Unlock()
}

// insert adds or refreshes an entry, evicting the shard's least
// recently used entry past the cap. Callers hold the shard lock.
func (s *cacheShard) insert(k cacheKey, v any) {
	if e, ok := s.entries[k]; ok {
		e.res = v
		s.moveToFront(e)
		return
	}
	e := &cacheEntry{key: k, res: v}
	s.entries[k] = e
	s.pushFront(e)
	s.size++
	if s.size > s.max {
		oldest := s.tail
		s.unlink(oldest)
		delete(s.entries, oldest.key)
		s.size--
	}
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// len returns the current entry count across all shards.
func (c *resultCache) len() int {
	if c.disabled {
		return 0
	}
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.size
		s.mu.Unlock()
	}
	return total
}

// cap returns the configured total entry capacity (0 when disabled).
func (c *resultCache) cap() int { return c.capacity }

// shardsN returns the shard count.
func (c *resultCache) shardsN() int { return len(c.shards) }
