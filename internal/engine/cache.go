// Canonicalized-pattern result cache.
//
// Every quantity the allocator computes — distance-graph edges, path
// covers, merge costs, the final Assignment (which holds access
// *indices*, not addresses) — depends only on pairwise offset
// differences Offsets[j]-Offsets[i] and on the stride, never on
// absolute offsets. Translating every offset of a pattern by the same
// constant therefore yields a byte-identical Result up to the echoed
// Pattern itself. The cache exploits this: keys normalize the pattern
// so its first offset is zero (and drop the informational array name),
// letting A[i], A[i+1] share an entry with B[i+7], B[i+8].

package engine

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"dspaddr/internal/core"
)

// DefaultCacheSize is the entry cap used when Options.CacheSize is 0.
const DefaultCacheSize = 4096

// canonicalKey builds the cache key: the translation-normalized offset
// sequence plus every allocation parameter that influences the result.
func canonicalKey(req Request) string {
	var b strings.Builder
	base := 0
	if len(req.Pattern.Offsets) > 0 {
		base = req.Pattern.Offsets[0]
	}
	for _, d := range req.Pattern.Offsets {
		b.WriteString(strconv.Itoa(d - base))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(req.Pattern.Stride))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(req.AGU.Registers))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(req.AGU.ModifyRange))
	b.WriteByte('|')
	if req.InterIteration {
		b.WriteByte('w')
	}
	b.WriteByte('|')
	b.WriteString(req.Strategy)
	return b.String()
}

// rewrite adapts a cached canonical result to the requesting job:
// same allocation, but echoing the caller's pattern and configuration.
// The assignment is cloned so callers can't corrupt the cached entry.
func rewrite(cached *core.Result, req Request) *core.Result {
	out := *cached
	out.Pattern = req.Pattern
	out.Config = req.config()
	out.Assignment = cached.Assignment.Clone()
	return &out
}

// resultCache is a mutex-guarded LRU map from canonical keys to solved
// results. Entries are treated as immutable once inserted.
type resultCache struct {
	mu       sync.Mutex
	max      int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	disabled bool
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	key string
	res any
}

// newResultCache sizes the cache: 0 means DefaultCacheSize, negative
// disables caching entirely.
func newResultCache(size int) *resultCache {
	if size < 0 {
		return &resultCache{disabled: true}
	}
	if size == 0 {
		size = DefaultCacheSize
	}
	return &resultCache{
		max:     size,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached result for key, marking it most recently
// used.
func (c *resultCache) get(key string) (any, bool) {
	if c.disabled {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts a solved result, evicting the least recently used entry
// past the cap. Re-inserting an existing key refreshes its recency.
func (c *resultCache) put(key string, res any) {
	if c.disabled {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	if c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the current entry count.
func (c *resultCache) len() int {
	if c.disabled {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
