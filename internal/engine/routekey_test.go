package engine

import (
	"testing"

	"dspaddr/internal/model"
)

func TestRouteKeyTranslationInvariant(t *testing.T) {
	base := Request{
		Pattern: model.Pattern{Array: "A", Stride: 4, Offsets: []int{0, 1, 3, 6}},
		AGU:     model.AGUSpec{Registers: 2, ModifyRange: 1},
	}
	shifted := base
	shifted.Pattern.Array = "B"
	shifted.Pattern.Offsets = []int{7, 8, 10, 13}
	if RouteKey(base) != RouteKey(shifted) {
		t.Fatal("translated twin routed to a different key")
	}

	// Every parameter that changes the result must change the route.
	for name, mut := range map[string]func(*Request){
		"offsets":  func(r *Request) { r.Pattern.Offsets = []int{0, 1, 3, 7} },
		"stride":   func(r *Request) { r.Pattern.Stride = 8 },
		"regs":     func(r *Request) { r.AGU.Registers = 3 },
		"modrange": func(r *Request) { r.AGU.ModifyRange = 2 },
		"wrap":     func(r *Request) { r.InterIteration = true },
		"strategy": func(r *Request) { r.Strategy = "optimal" },
	} {
		req := base
		req.Pattern.Offsets = append([]int(nil), base.Pattern.Offsets...)
		mut(&req)
		if RouteKey(req) == RouteKey(base) {
			t.Errorf("%s change did not change the route key", name)
		}
	}

	// "" and "greedy" select the same solve and must share a route.
	greedy := base
	greedy.Strategy = "greedy"
	if RouteKey(greedy) != RouteKey(base) {
		t.Fatal(`"greedy" and "" routed differently`)
	}
}
