package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dspaddr/internal/core"
	"dspaddr/internal/model"
)

func testRequest(offsets ...int) Request {
	return Request{
		Pattern: model.NewPattern(offsets...),
		AGU:     model.AGUSpec{Registers: 2, ModifyRange: 1},
	}
}

// TestRunMatchesDirectAllocate checks the engine returns exactly what
// the underlying allocator returns.
func TestRunMatchesDirectAllocate(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()

	req := Request{Pattern: model.PaperExample(), AGU: model.AGUSpec{Registers: 1, ModifyRange: 1}}
	got := e.Run(context.Background(), req)
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	want, err := core.Allocate(req.Pattern, req.config())
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Cost != want.Cost {
		t.Fatalf("cost %d, want %d", got.Result.Cost, want.Cost)
	}
	if !reflect.DeepEqual(got.Result.Assignment, want.Assignment) {
		t.Fatalf("assignment %v, want %v", got.Result.Assignment, want.Assignment)
	}
}

// TestBoundedWorkers instruments the solver and checks that observed
// solver concurrency never exceeds the pool size even when far more
// jobs are submitted at once.
func TestBoundedWorkers(t *testing.T) {
	const workers = 4
	const jobs = 64
	e := New(Options{Workers: workers, CacheSize: -1})
	defer e.Close()

	var inFlight, peak atomic.Int64
	e.solve = func(ctx context.Context, s *core.Solver, r Request) (*core.Result, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return s.Allocate(ctx, r.Pattern, r.config())
	}

	reqs := make([]Request, jobs)
	for i := range reqs {
		reqs[i] = testRequest(i, i+1, i+3) // distinct canonical forms
	}
	for i, res := range e.RunBatch(context.Background(), reqs) {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent solves, pool size %d", p, workers)
	}
	if s := e.Stats(); s.Jobs != jobs {
		t.Fatalf("stats.Jobs = %d, want %d", s.Jobs, jobs)
	}
}

// TestCacheHitDeterminism submits the same pattern twice and requires
// the second result to be a cache hit identical to the first.
func TestCacheHitDeterminism(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()

	req := Request{Pattern: model.PaperExample(), AGU: model.AGUSpec{Registers: 1, ModifyRange: 1}}
	first := e.Run(context.Background(), req)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.CacheHit {
		t.Fatal("first request must not hit the cache")
	}
	second := e.Run(context.Background(), req)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !second.CacheHit {
		t.Fatal("second identical request must hit the cache")
	}
	if second.Result.Cost != first.Result.Cost ||
		second.Result.VirtualRegisters != first.Result.VirtualRegisters ||
		second.Result.Merged != first.Result.Merged {
		t.Fatalf("cache hit differs: %+v vs %+v", second.Result, first.Result)
	}
	if !reflect.DeepEqual(second.Result.Assignment, first.Result.Assignment) {
		t.Fatalf("assignment %v, want %v", second.Result.Assignment, first.Result.Assignment)
	}
	if s := e.Stats(); s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("stats hits/misses = %d/%d, want 1/1", s.CacheHits, s.CacheMisses)
	}
}

// TestCacheTranslationInvariance checks that a pattern translated by a
// constant offset hits the entry of the untranslated pattern and still
// echoes its own pattern back.
func TestCacheTranslationInvariance(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	base := e.Run(context.Background(), testRequest(1, 0, 2, -1))
	if base.Err != nil {
		t.Fatal(base.Err)
	}
	shifted := testRequest(8, 7, 9, 6) // +7 translation, same distances
	hit := e.Run(context.Background(), shifted)
	if hit.Err != nil {
		t.Fatal(hit.Err)
	}
	if !hit.CacheHit {
		t.Fatal("translated pattern should hit the canonical cache entry")
	}
	if hit.Result.Cost != base.Result.Cost {
		t.Fatalf("translated cost %d, want %d", hit.Result.Cost, base.Result.Cost)
	}
	if !reflect.DeepEqual(hit.Result.Pattern.Offsets, shifted.Pattern.Offsets) {
		t.Fatalf("hit echoes pattern %v, want caller's %v", hit.Result.Pattern.Offsets, shifted.Pattern.Offsets)
	}
	// Direct solve of the shifted pattern must agree with the rewrite.
	direct, err := core.Allocate(shifted.Pattern, shifted.config())
	if err != nil {
		t.Fatal(err)
	}
	if hit.Result.Cost != direct.Cost {
		t.Fatalf("rewritten cost %d, direct solve %d", hit.Result.Cost, direct.Cost)
	}
}

// TestCacheIsolation mutates both a cache-miss and a cache-hit result
// and checks the cached entry is unaffected either way (misses hand
// out a clone of the value that went into the cache, not the value
// itself).
func TestCacheIsolation(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	req := Request{Pattern: model.PaperExample(), AGU: model.AGUSpec{Registers: 1, ModifyRange: 1}}

	miss := e.Run(context.Background(), req)
	if miss.CacheHit {
		t.Fatal("first request must be a miss")
	}
	miss.Result.Assignment.Paths[0][0] = 99

	hit := e.Run(context.Background(), req)
	if !hit.CacheHit {
		t.Fatal("expected cache hit")
	}
	if hit.Result.Assignment.Paths[0][0] == 99 {
		t.Fatal("mutating a cache-miss result corrupted the cached entry")
	}
	hit.Result.Assignment.Paths[0][0] = 99

	again := e.Run(context.Background(), req)
	if again.Result.Assignment.Paths[0][0] == 99 {
		t.Fatal("mutating a cache-hit result corrupted the cached entry")
	}
}

// TestSingleFlight checks that concurrent identical jobs share one
// solve instead of all missing the cold cache.
func TestSingleFlight(t *testing.T) {
	const jobs = 8
	e := New(Options{Workers: jobs})
	defer e.Close()

	var solves atomic.Int64
	e.solve = func(ctx context.Context, s *core.Solver, r Request) (*core.Result, error) {
		solves.Add(1)
		time.Sleep(20 * time.Millisecond) // hold the flight open
		return s.Allocate(ctx, r.Pattern, r.config())
	}

	req := Request{Pattern: model.PaperExample(), AGU: model.AGUSpec{Registers: 2, ModifyRange: 1}}
	var wg sync.WaitGroup
	results := make([]JobResult, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.Run(context.Background(), req)
		}(i)
	}
	wg.Wait()

	hits := 0
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		if res.CacheHit {
			hits++
		}
	}
	if n := solves.Load(); n != 1 {
		t.Fatalf("%d solves for %d concurrent identical jobs, want 1", n, jobs)
	}
	if hits != jobs-1 {
		t.Fatalf("%d jobs reported as hits, want %d (all but the leader)", hits, jobs-1)
	}
	s := e.Stats()
	if s.Deduped != jobs-1 {
		t.Fatalf("stats deduped = %d, want %d (every follower)", s.Deduped, jobs-1)
	}
	if s.CacheMisses != 1 {
		t.Fatalf("stats misses = %d, want 1 (the leader)", s.CacheMisses)
	}
	if s.CacheHits != jobs-1 {
		t.Fatalf("stats hits = %d, want %d (dedupe counts as hits)", s.CacheHits, jobs-1)
	}
}

// TestConcurrentMixedLoad hammers Run, RunBatch and Stats from many
// goroutines; run under -race this is the engine's data-race test.
func TestConcurrentMixedLoad(t *testing.T) {
	e := New(Options{Workers: 4, CacheSize: 64})
	defer e.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch i % 3 {
				case 0:
					res := e.Run(context.Background(), testRequest(i%5, (i%5)+1, (i%5)+2, 0))
					if res.Err != nil {
						t.Errorf("run: %v", res.Err)
					}
				case 1:
					reqs := []Request{testRequest(0, 1, 2), testRequest(g, g+2)}
					for _, r := range e.RunBatch(context.Background(), reqs) {
						if r.Err != nil {
							t.Errorf("batch: %v", r.Err)
						}
					}
				default:
					e.Stats()
				}
			}
		}(g)
	}
	wg.Wait()

	s := e.Stats()
	if s.CacheHits == 0 {
		t.Error("repeated patterns produced no cache hits")
	}
	if s.Errors != 0 || s.Timeouts != 0 || s.Canceled != 0 {
		t.Errorf("unexpected failures in stats: %+v", s)
	}
}

func testLoop() model.LoopSpec {
	return model.LoopSpec{
		Var: "i", From: 0, To: 9, Stride: 1,
		Accesses: []model.Access{
			{Array: "A", Offset: 1}, {Array: "B", Offset: 0},
			{Array: "A", Offset: 0}, {Array: "B", Offset: 2},
		},
	}
}

// TestRunLoopMatchesAllocateLoop checks whole-loop jobs agree with the
// library's shared-budget allocation.
func TestRunLoopMatchesAllocateLoop(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()

	req := LoopRequest{Loop: testLoop(), AGU: model.AGUSpec{Registers: 3, ModifyRange: 1}}
	got := e.RunLoop(context.Background(), req)
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	want, err := core.AllocateLoop(req.Loop, req.config())
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.TotalCost != want.TotalCost || got.Result.RegistersUsed != want.RegistersUsed {
		t.Fatalf("cost/registers %d/%d, want %d/%d",
			got.Result.TotalCost, got.Result.RegistersUsed, want.TotalCost, want.RegistersUsed)
	}
	if len(got.Result.Arrays) != len(want.Arrays) {
		t.Fatalf("%d arrays, want %d", len(got.Result.Arrays), len(want.Arrays))
	}
}

// TestRunLoopCacheHit checks loop jobs cache, translate and stay
// isolated from caller mutation.
func TestRunLoopCacheHit(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	agu := model.AGUSpec{Registers: 3, ModifyRange: 1}

	first := e.RunLoop(context.Background(), LoopRequest{Loop: testLoop(), AGU: agu})
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.CacheHit {
		t.Fatal("first loop job must not hit the cache")
	}

	// Same body shape: arrays renamed, offsets translated per array,
	// different bounds. Must hit the same entry.
	translated := model.LoopSpec{
		Var: "j", From: 5, To: 50, Stride: 1,
		Accesses: []model.Access{
			{Array: "X", Offset: 8}, {Array: "Y", Offset: -3},
			{Array: "X", Offset: 7}, {Array: "Y", Offset: -1},
		},
	}
	second := e.RunLoop(context.Background(), LoopRequest{Loop: translated, AGU: agu})
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !second.CacheHit {
		t.Fatal("translated loop should hit the canonical cache entry")
	}
	if second.Result.TotalCost != first.Result.TotalCost {
		t.Fatalf("translated cost %d, want %d", second.Result.TotalCost, first.Result.TotalCost)
	}
	if second.Result.Arrays[0].Result.Pattern.Array != "X" {
		t.Fatalf("hit echoes array %q, want caller's X", second.Result.Arrays[0].Result.Pattern.Array)
	}
	direct, err := core.AllocateLoop(translated, LoopRequest{AGU: agu}.config())
	if err != nil {
		t.Fatal(err)
	}
	if second.Result.TotalCost != direct.TotalCost {
		t.Fatalf("rewritten cost %d, direct solve %d", second.Result.TotalCost, direct.TotalCost)
	}

	// Mutating a hit must not corrupt the cached entry.
	second.Result.Arrays[0].Result.Assignment.Paths[0][0] = 99
	second.Result.Arrays[0].GlobalRegisters[0] = 99
	third := e.RunLoop(context.Background(), LoopRequest{Loop: testLoop(), AGU: agu})
	if third.Result.Arrays[0].Result.Assignment.Paths[0][0] == 99 ||
		third.Result.Arrays[0].GlobalRegisters[0] == 99 {
		t.Fatal("mutating a cache-hit loop result corrupted the cached entry")
	}
}

// TestRunLoopErrors covers loop-job validation: too few registers for
// the array count, bad strategy, empty loop.
func TestRunLoopErrors(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	ctx := context.Background()

	short := LoopRequest{Loop: testLoop(), AGU: model.AGUSpec{Registers: 1, ModifyRange: 1}}
	if res := e.RunLoop(ctx, short); res.Err == nil {
		t.Error("2 arrays on 1 register accepted")
	}
	bad := LoopRequest{Loop: testLoop(), AGU: model.AGUSpec{Registers: 2, ModifyRange: 1}, Strategy: "nope"}
	if res := e.RunLoop(ctx, bad); res.Err == nil {
		t.Error("unknown strategy accepted")
	}
	if res := e.RunLoop(ctx, LoopRequest{AGU: model.AGUSpec{Registers: 1, ModifyRange: 1}}); res.Err == nil {
		t.Error("empty loop accepted")
	}
}

// TestJobTimeout checks that a slow solve is abandoned with ErrTimeout
// and counted in the stats. The per-job deadline reaches the solver as
// its context (cooperative cancellation), so the cooperating fake here
// returns promptly at the deadline and the worker is freed — the
// pre-overhaul engine kept the worker occupied until the solve chose
// to finish.
func TestJobTimeout(t *testing.T) {
	e := New(Options{Workers: 1, JobTimeout: 5 * time.Millisecond, CacheSize: -1})
	defer e.Close()
	e.solve = func(ctx context.Context, s *core.Solver, r Request) (*core.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	res := e.Run(context.Background(), testRequest(0, 1))
	if !errors.Is(res.Err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", res.Err)
	}
	if s := e.Stats(); s.Timeouts != 1 {
		t.Fatalf("stats.Timeouts = %d, want 1", s.Timeouts)
	}
}

// TestTimeoutKeepsWorkerOccupied pins the bounded-concurrency rule
// for solves that ignore their cancellation context: such a solve
// keeps its worker busy (solves only ever run on leader workers), so
// later jobs cannot pile extra solves on top of it.
func TestTimeoutKeepsWorkerOccupied(t *testing.T) {
	e := New(Options{Workers: 1, JobTimeout: time.Millisecond, CacheSize: -1})
	var concurrent, peak atomic.Int64
	block := make(chan struct{})
	e.solve = func(ctx context.Context, s *core.Solver, r Request) (*core.Result, error) {
		n := concurrent.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		<-block
		concurrent.Add(-1)
		return nil, fmt.Errorf("solver blocked for the test")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if res := e.Run(ctx, testRequest(i, i+1)); res.Err == nil {
				t.Error("blocked solve reported success")
			}
		}(i)
	}
	wg.Wait()
	close(block)
	e.Close()
	if p := peak.Load(); p != 1 {
		t.Fatalf("peak concurrent solves %d, want 1 — timed-out jobs must not stack solves", p)
	}
}

// pathologicalWrapRequest returns a wrap-objective request whose
// phase-1 branch-and-bound provably exhausts its full node budget
// (dense intra edges from a tight offset spread, infeasible wrap
// constraints from a large stride), making the uncancelled solve take
// on the order of 10^8 ns. The cancellation tests use it as the
// "solve that would otherwise occupy a worker for a long time".
func pathologicalWrapRequest() Request {
	rng := rand.New(rand.NewSource(1))
	offs := make([]int, 24)
	for i := range offs {
		offs[i] = rng.Intn(7) - 3
	}
	return Request{
		Pattern:        model.Pattern{Array: "A", Stride: 9, Offsets: offs},
		AGU:            model.AGUSpec{Registers: 3, ModifyRange: 2},
		InterIteration: true,
	}
}

// TestCancellationFreesWorker pins the tentpole cancellation property
// end to end with the real solver: canceling a job whose pathological
// phase-1 search is in flight frees its worker long before the full
// solve would have completed, so a subsequent job on the same
// single-worker engine is served promptly.
func TestCancellationFreesWorker(t *testing.T) {
	slow := pathologicalWrapRequest()

	// Reference point: how long the full solve takes uncancelled.
	full := New(Options{Workers: 1, CacheSize: -1})
	fullStart := time.Now()
	if res := full.Run(context.Background(), slow); res.Err != nil {
		t.Fatal(res.Err)
	}
	fullDur := time.Since(fullStart)
	full.Close()

	e := New(Options{Workers: 1, CacheSize: -1})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond) // let the solve start
		cancel()
	}()
	canceledStart := time.Now()
	res := e.Run(ctx, slow)
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", res.Err)
	}
	// The single worker must be free again: a quick job completes, and
	// the whole canceled-plus-followup sequence beats the full solve
	// by a wide margin (the search polls ctx every few hundred nodes).
	quick := e.Run(context.Background(), testRequest(0, 1, 2))
	if quick.Err != nil {
		t.Fatalf("follow-up job after cancellation: %v", quick.Err)
	}
	if reclaimed := time.Since(canceledStart); reclaimed > fullDur/2 {
		t.Fatalf("worker reclaimed after %v; full solve takes %v — cancellation did not free the worker early",
			reclaimed, fullDur)
	}
	if s := e.Stats(); s.Canceled == 0 {
		t.Fatalf("stats.Canceled = 0, want >0: %+v", s)
	}
}

// TestShardedCacheSingleFlightRace hammers the sharded cache and its
// folded-in single-flight tables from 64 goroutines with heavily
// overlapping keys (including translated duplicates). Run under
// -race this is the cache's data-race test; the counter identity
// checked afterwards pins that every request was answered exactly
// once — deduped followers included — with no outcome lost between
// shards.
func TestShardedCacheSingleFlightRace(t *testing.T) {
	e := New(Options{Workers: 8})
	defer e.Close()

	const goroutines = 64
	const perG = 32
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// 8 canonical identities; every other request is a
				// translated duplicate, so hits, misses and dedups all
				// occur concurrently.
				base := (g + i) % 8
				shift := (i % 2) * 10
				res := e.Run(context.Background(), testRequest(base+shift, base+shift+1, shift))
				if res.Err != nil {
					failures.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d requests failed", failures.Load())
	}
	s := e.Stats()
	const total = goroutines * perG
	if s.Jobs != total {
		t.Fatalf("stats.Jobs = %d, want %d", s.Jobs, total)
	}
	if s.CacheHits+s.CacheMisses != total {
		t.Fatalf("hits %d + misses %d != %d requests (deduped %d)",
			s.CacheHits, s.CacheMisses, total, s.Deduped)
	}
	if s.Deduped > s.CacheHits {
		t.Fatalf("deduped %d exceeds hits %d", s.Deduped, s.CacheHits)
	}
	if s.Errors != 0 || s.Timeouts != 0 || s.Canceled != 0 {
		t.Fatalf("unexpected failure counters: %+v", s)
	}
}

// TestErrorPaths covers invalid requests: bad strategy, bad AGU, empty
// pattern, canceled context.
func TestErrorPaths(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	ctx := context.Background()

	bad := testRequest(0, 1)
	bad.Strategy = "no-such-strategy"
	if res := e.Run(ctx, bad); res.Err == nil {
		t.Error("unknown strategy accepted")
	}

	noRegs := testRequest(0, 1)
	noRegs.AGU.Registers = 0
	if res := e.Run(ctx, noRegs); res.Err == nil {
		t.Error("zero-register AGU accepted")
	}

	empty := Request{AGU: model.AGUSpec{Registers: 1, ModifyRange: 1}}
	if res := e.Run(ctx, empty); res.Err == nil {
		t.Error("empty pattern accepted")
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if res := e.Run(canceled, testRequest(0, 1)); !errors.Is(res.Err, context.Canceled) {
		t.Errorf("canceled context: err = %v", res.Err)
	}
}

// TestClose checks Close drains the pool and subsequent Run fails
// cleanly.
func TestClose(t *testing.T) {
	e := New(Options{Workers: 2})
	if res := e.Run(context.Background(), testRequest(0, 1)); res.Err != nil {
		t.Fatal(res.Err)
	}
	e.Close()
	e.Close() // idempotent
	if res := e.Run(context.Background(), testRequest(0, 1)); res.Err == nil {
		t.Fatal("Run after Close succeeded")
	}
}

// TestCacheEviction checks the per-shard LRU cap holds. Keys are
// handcrafted with identical digest low bits so they all land in one
// shard — the cap under test is that shard's slice of the total.
func TestCacheEviction(t *testing.T) {
	c := newResultCache(2 * shardCount()) // two entries per shard
	key := func(i int) cacheKey {
		// h1 = 0 pins shard 0; registers distinguishes the keys.
		return cacheKey{h1: 0, h2: uint64(i), registers: int32(i)}
	}
	r := &core.Result{}
	c.put(key(1), r)
	c.put(key(2), r)
	c.put(key(3), r) // evicts key(1)
	if _, ok := c.get(key(1)); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := c.get(key(2)); !ok {
		t.Fatal("entry 2 missing")
	}
	c.put(key(4), r) // 3 older than 2 after the get above → evict 3
	if _, ok := c.get(key(3)); ok {
		t.Fatal("LRU order ignored recency of get")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if c.cap() != 2*shardCount() || c.shardsN() != shardCount() {
		t.Fatalf("cap/shards = %d/%d, want %d/%d", c.cap(), c.shardsN(), 2*shardCount(), shardCount())
	}
}

// TestCacheCapacityExact pins that the per-shard caps sum to exactly
// the configured size: no fill pattern can push the entry count past
// CacheSize, and caches smaller than the default shard count shed
// shards instead of rounding their capacity up.
func TestCacheCapacityExact(t *testing.T) {
	for _, size := range []int{1, 3, shardCount() - 1, shardCount() + 1, 100} {
		c := newResultCache(size)
		if c.cap() != size {
			t.Fatalf("size %d: cap() = %d", size, c.cap())
		}
		total := 0
		for i := range c.shards {
			total += c.shards[i].max
		}
		if total != size {
			t.Fatalf("size %d: shard caps sum to %d", size, total)
		}
		r := &core.Result{}
		for i := 0; i < 4*size+16; i++ {
			c.put(cacheKey{h1: uint64(i), h2: uint64(i), registers: int32(i)}, r)
		}
		if n := c.len(); n > size {
			t.Fatalf("size %d: %d entries retained, exceeds configured bound", size, n)
		}
	}
}

// TestCanonicalKey checks translation collapses and parameter changes
// separate.
func TestCanonicalKey(t *testing.T) {
	a := testRequest(1, 0, 2)
	b := testRequest(11, 10, 12)
	if canonicalKey(a) != canonicalKey(b) {
		t.Error("translated patterns should share a key")
	}
	c := testRequest(1, 0, 2)
	c.AGU.ModifyRange = 2
	if canonicalKey(a) == canonicalKey(c) {
		t.Error("different modify range must not share a key")
	}
	d := testRequest(1, 0, 2)
	d.Pattern.Stride = 4
	if canonicalKey(a) == canonicalKey(d) {
		t.Error("different stride must not share a key")
	}
	e := testRequest(1, 0, 2)
	e.Strategy = "optimal"
	if canonicalKey(a) == canonicalKey(e) {
		t.Error("different strategy must not share a key")
	}
}
