// Package graph provides the small directed-graph substrate used by the
// distance-graph model and the path-cover algorithms: adjacency storage
// with labelled nodes, edge attributes, reachability helpers, and DOT
// export for visualization (Figure 1 of the paper is such a graph).
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Digraph is a directed graph over nodes 0..N-1 with optional string
// labels and integer edge weights. The zero value is an empty graph;
// add nodes with AddNode or construct with New.
type Digraph struct {
	labels []string
	adj    [][]Edge // outgoing edges per node, kept sorted by target
	in     []int    // in-degree per node
	edges  int
}

// Edge is a directed edge to a target node with an integer weight
// (the address distance in the distance-graph application).
type Edge struct {
	To     int
	Weight int
}

// New returns a digraph with n unlabelled nodes.
func New(n int) *Digraph {
	g := &Digraph{}
	g.Reset(n)
	return g
}

// Reset reinitializes the graph to n unlabelled, edge-free nodes,
// reusing the adjacency storage of previous builds. It lets hot paths
// that construct one graph per request recycle a single Digraph
// instead of reallocating node and edge slices every time.
func (g *Digraph) Reset(n int) {
	if cap(g.labels) >= n && cap(g.adj) >= n && cap(g.in) >= n {
		g.labels = g.labels[:n]
		g.adj = g.adj[:n]
		g.in = g.in[:n]
	} else {
		g.labels = make([]string, n)
		g.adj = make([][]Edge, n)
		g.in = make([]int, n)
	}
	for i := 0; i < n; i++ {
		g.labels[i] = ""
		g.adj[i] = g.adj[i][:0]
		g.in[i] = 0
	}
	g.edges = 0
}

// AddNode appends a node with the given label and returns its index.
func (g *Digraph) AddNode(label string) int {
	g.labels = append(g.labels, label)
	g.adj = append(g.adj, nil)
	g.in = append(g.in, 0)
	return len(g.labels) - 1
}

// N returns the number of nodes.
func (g *Digraph) N() int { return len(g.labels) }

// E returns the number of edges.
func (g *Digraph) E() int { return g.edges }

// Label returns node i's label.
func (g *Digraph) Label(i int) string { return g.labels[i] }

// SetLabel sets node i's label.
func (g *Digraph) SetLabel(i int, label string) { g.labels[i] = label }

// AddEdge inserts a directed edge u->v with the given weight. Duplicate
// edges (same u,v) are rejected with an error; self-loops are allowed
// (they arise as wrap edges of singleton paths). The adjacency list
// stays sorted by target via positional insertion, so builders that add
// edges in ascending target order (the distance-graph construction)
// pay a plain append and no sort.
func (g *Digraph) AddEdge(u, v, weight int) error {
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.N())
	}
	es := g.adj[u]
	k := sort.Search(len(es), func(i int) bool { return es[i].To >= v })
	if k < len(es) && es[k].To == v {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	es = append(es, Edge{})
	copy(es[k+1:], es[k:])
	es[k] = Edge{To: v, Weight: weight}
	g.adj[u] = es
	g.in[v]++
	g.edges++
	return nil
}

// HasEdge reports whether edge u->v exists.
func (g *Digraph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.N() {
		return false
	}
	es := g.adj[u]
	k := sort.Search(len(es), func(i int) bool { return es[i].To >= v })
	return k < len(es) && es[k].To == v
}

// Weight returns the weight of edge u->v and whether it exists.
func (g *Digraph) Weight(u, v int) (int, bool) {
	if u < 0 || u >= g.N() {
		return 0, false
	}
	es := g.adj[u]
	k := sort.Search(len(es), func(i int) bool { return es[i].To >= v })
	if k < len(es) && es[k].To == v {
		return es[k].Weight, true
	}
	return 0, false
}

// Out returns node u's outgoing edges (shared slice; callers must not
// mutate it).
func (g *Digraph) Out(u int) []Edge { return g.adj[u] }

// OutDegree returns the number of outgoing edges of u.
func (g *Digraph) OutDegree(u int) int { return len(g.adj[u]) }

// InDegree returns the number of incoming edges of v.
func (g *Digraph) InDegree(v int) int { return g.in[v] }

// Successors returns the targets of u's outgoing edges in ascending
// order (a fresh slice).
func (g *Digraph) Successors(u int) []int {
	out := make([]int, len(g.adj[u]))
	for i, e := range g.adj[u] {
		out[i] = e.To
	}
	return out
}

// IsDAG reports whether the graph has no directed cycle (self-loops
// count as cycles).
func (g *Digraph) IsDAG() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, g.N())
	var visit func(u int) bool
	visit = func(u int) bool {
		color[u] = grey
		for _, e := range g.adj[u] {
			switch color[e.To] {
			case grey:
				return false
			case white:
				if !visit(e.To) {
					return false
				}
			}
		}
		color[u] = black
		return true
	}
	for u := 0; u < g.N(); u++ {
		if color[u] == white && !visit(u) {
			return false
		}
	}
	return true
}

// TopoSort returns a topological order of the nodes, or an error if the
// graph has a cycle.
func (g *Digraph) TopoSort() ([]int, error) {
	indeg := make([]int, g.N())
	copy(indeg, g.in)
	queue := make([]int, 0, g.N())
	for u := 0; u < g.N(); u++ {
		if indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	order := make([]int, 0, g.N())
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, e := range g.adj[u] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != g.N() {
		return nil, fmt.Errorf("graph: not a DAG (%d of %d nodes ordered)", len(order), g.N())
	}
	return order, nil
}

// IsPath reports whether the node sequence is a directed path in g
// (every consecutive pair connected by an edge).
func (g *Digraph) IsPath(nodes []int) bool {
	for k := 1; k < len(nodes); k++ {
		if !g.HasEdge(nodes[k-1], nodes[k]) {
			return false
		}
	}
	return true
}

// DOT renders the graph in Graphviz DOT syntax with the given graph
// name. Node labels default to the node index when empty.
func (g *Digraph) DOT(name string) string {
	return g.DOTFunc(name, g.Label)
}

// DOTFunc renders the graph like DOT but derives node labels from the
// given function instead of the stored labels. Builders that skip
// SetLabel on hot paths use it to render display labels on demand.
func (g *Digraph) DOTFunc(name string, label func(i int) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", sanitizeDOTName(name))
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	for i := 0; i < g.N(); i++ {
		l := label(i)
		if l == "" {
			l = fmt.Sprintf("%d", i)
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", i, l)
	}
	for u := 0; u < g.N(); u++ {
		for _, e := range g.adj[u] {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%+d\"];\n", u, e.To, e.Weight)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func sanitizeDOTName(name string) string {
	if name == "" {
		return "G"
	}
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Clone deep-copies the graph.
func (g *Digraph) Clone() *Digraph {
	c := &Digraph{
		labels: append([]string(nil), g.labels...),
		adj:    make([][]Edge, len(g.adj)),
		in:     append([]int(nil), g.in...),
		edges:  g.edges,
	}
	for i, es := range g.adj {
		c.adj[i] = append([]Edge(nil), es...)
	}
	return c
}
