package graph

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestAddNodeAndEdge(t *testing.T) {
	g := New(3)
	if g.N() != 3 || g.E() != 0 {
		t.Fatalf("N=%d E=%d", g.N(), g.E())
	}
	if err := g.AddEdge(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1, 5); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, 0, 1); err == nil {
		t.Fatal("negative source accepted")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if w, ok := g.Weight(0, 1); !ok || w != 5 {
		t.Fatalf("Weight = %d,%v", w, ok)
	}
	if _, ok := g.Weight(1, 2); ok {
		t.Fatal("missing edge has weight")
	}
	if _, ok := g.Weight(9, 2); ok {
		t.Fatal("out-of-range source has weight")
	}
	if g.HasEdge(9, 0) {
		t.Fatal("out-of-range HasEdge true")
	}
}

func TestDegreesAndSuccessors(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 2, 1)
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 3, 1, 1)
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 0 {
		t.Fatalf("out degrees wrong")
	}
	if g.InDegree(1) != 2 || g.InDegree(0) != 0 {
		t.Fatalf("in degrees wrong")
	}
	if got := g.Successors(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Successors = %v", got)
	}
	if g.E() != 3 {
		t.Fatalf("E = %d", g.E())
	}
}

func TestLabels(t *testing.T) {
	g := New(1)
	i := g.AddNode("a2")
	if g.Label(i) != "a2" || g.Label(0) != "" {
		t.Fatal("labels wrong")
	}
	g.SetLabel(0, "a1")
	if g.Label(0) != "a1" {
		t.Fatal("SetLabel failed")
	}
}

func TestIsDAGAndTopoSort(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1, 0)
	mustEdge(t, g, 1, 2, 0)
	mustEdge(t, g, 0, 2, 0)
	mustEdge(t, g, 2, 3, 0)
	if !g.IsDAG() {
		t.Fatal("acyclic graph reported cyclic")
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for k, u := range order {
		pos[u] = k
	}
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Out(u) {
			if pos[u] >= pos[e.To] {
				t.Fatalf("topo order violates edge %d->%d", u, e.To)
			}
		}
	}

	mustEdge(t, g, 3, 0, 0) // close a cycle
	if g.IsDAG() {
		t.Fatal("cyclic graph reported acyclic")
	}
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("TopoSort accepted cyclic graph")
	}
}

func TestSelfLoopIsCycle(t *testing.T) {
	g := New(1)
	mustEdge(t, g, 0, 0, 1)
	if g.IsDAG() {
		t.Fatal("self-loop reported acyclic")
	}
}

func TestIsPath(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1, 0)
	mustEdge(t, g, 1, 3, 0)
	if !g.IsPath([]int{0, 1, 3}) {
		t.Fatal("valid path rejected")
	}
	if g.IsPath([]int{0, 3}) {
		t.Fatal("invalid path accepted")
	}
	if !g.IsPath([]int{2}) || !g.IsPath(nil) {
		t.Fatal("trivial paths rejected")
	}
}

func TestDOT(t *testing.T) {
	g := New(2)
	g.SetLabel(0, "+1")
	mustEdge(t, g, 0, 1, -1)
	dot := g.DOT("fig 1")
	for _, want := range []string{"digraph fig_1 {", `n0 [label="+1"]`, `n1 [label="1"]`, `n0 -> n1 [label="-1"]`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q in:\n%s", want, dot)
		}
	}
	if !strings.Contains((&Digraph{}).DOT(""), "digraph G {") {
		t.Error("empty name should default to G")
	}
}

func TestClone(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1, 7)
	c := g.Clone()
	mustEdge(t, g, 1, 2, 1)
	if c.E() != 1 || g.E() != 2 {
		t.Fatalf("clone not independent: c.E=%d g.E=%d", c.E(), g.E())
	}
	if w, ok := c.Weight(0, 1); !ok || w != 7 {
		t.Fatal("clone lost edge")
	}
}

// Property: random DAG construction (edges only forward) always passes
// IsDAG and TopoSort covers all nodes.
func TestRandomForwardGraphIsDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					mustEdge(t, g, u, v, rng.Intn(9)-4)
				}
			}
		}
		if !g.IsDAG() {
			t.Fatal("forward graph not DAG")
		}
		order, err := g.TopoSort()
		if err != nil || len(order) != n {
			t.Fatalf("topo sort failed: %v len=%d", err, len(order))
		}
	}
}

func mustEdge(t *testing.T, g *Digraph, u, v, w int) {
	t.Helper()
	if err := g.AddEdge(u, v, w); err != nil {
		t.Fatal(err)
	}
}
