// Package agu models the address generation unit of a DSP: a file of
// address registers supporting free post-modify by a bounded distance
// (|d| <= M, executed in parallel with the data path) and explicit
// pointer-arithmetic instructions for larger updates (one instruction,
// i.e. the paper's unit cost).
//
// Given an allocation produced by the core allocator, the package
// builds the per-iteration address schedule: which register serves each
// access, which updates ride along as free post-modifies, and which
// need explicit instructions. The schedule is the intermediate form the
// code generator lowers to assembly and the simulator executes; it also
// self-verifies by symbolic execution (Verify).
package agu

import (
	"fmt"

	"dspaddr/internal/model"
)

// OpKind enumerates explicit AGU instructions.
type OpKind int

const (
	// OpLoad is LDAR Rk, #imm — load an address register with an
	// absolute address (used in the loop preamble).
	OpLoad OpKind = iota
	// OpAdd is ADAR Rk, #imm — add a signed immediate to an address
	// register; the paper's unit-cost address computation.
	OpAdd
)

// String returns the mnemonic.
func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "LDAR"
	case OpAdd:
		return "ADAR"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Instr is one explicit AGU instruction.
type Instr struct {
	Kind  OpKind
	Reg   int
	Value int
}

// String renders e.g. "ADAR AR2, #-3".
func (in Instr) String() string {
	return fmt.Sprintf("%s AR%d, #%d", in.Kind, in.Reg, in.Value)
}

// Step is the addressing behaviour of one access within an iteration.
type Step struct {
	// Access is the pattern position served by this step.
	Access int
	// Reg is the address register holding the access's address.
	Reg int
	// PostModify is the free post-modify distance applied in parallel
	// with the access (zero when no free update is attached).
	PostModify int
	// Extra lists unit-cost instructions issued after the access to
	// perform an out-of-range update.
	Extra []Instr
}

// Schedule is the complete addressing plan of one loop iteration.
type Schedule struct {
	// Pattern is the access pattern being addressed.
	Pattern model.Pattern
	// Spec is the AGU description the schedule was built for.
	Spec model.AGUSpec
	// Base is the array's base address used by the preamble.
	Base int
	// First is the loop variable's initial value.
	First int
	// Preamble initializes each used register to its first address.
	Preamble []Instr
	// Steps lists the per-access behaviour in program order.
	Steps []Step
}

// Build lowers an assignment to an address schedule. base is the
// array's base address and first the initial loop-variable value, so
// register r starts at base+first+offset(head_r). Every register
// receives its inter-iteration (wrap) update — as a free post-modify
// when within range, as an explicit instruction otherwise — regardless
// of whether the allocator's objective counted wrap costs: the
// generated code must be correct for every iteration.
func Build(pat model.Pattern, a model.Assignment, spec model.AGUSpec, base, first int) (*Schedule, error) {
	if err := pat.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := a.Validate(pat); err != nil {
		return nil, err
	}
	if a.Registers() > spec.Registers {
		return nil, fmt.Errorf("agu: assignment uses %d registers, AGU has %d", a.Registers(), spec.Registers)
	}

	s := &Schedule{Pattern: pat, Spec: spec, Base: base, First: first}
	steps := make([]Step, pat.N())

	for r, path := range a.Paths {
		head := path[0]
		s.Preamble = append(s.Preamble, Instr{Kind: OpLoad, Reg: r, Value: base + first + pat.Offsets[head]})
		for k, acc := range path {
			st := Step{Access: acc, Reg: r}
			var dist int
			if k+1 < len(path) {
				dist = pat.Distance(acc, path[k+1])
			} else {
				dist = pat.WrapDistance(acc, head)
			}
			if model.TransitionCost(dist, spec.ModifyRange) == 0 {
				st.PostModify = dist
			} else {
				st.Extra = []Instr{{Kind: OpAdd, Reg: r, Value: dist}}
			}
			steps[acc] = st
		}
	}
	s.Steps = steps
	return s, nil
}

// UnitCostPerIteration counts the explicit (unit-cost) address
// instructions executed per loop iteration, including wrap updates.
func (s *Schedule) UnitCostPerIteration() int {
	total := 0
	for _, st := range s.Steps {
		total += len(st.Extra)
	}
	return total
}

// RegistersUsed returns the number of distinct registers the schedule
// touches.
func (s *Schedule) RegistersUsed() int {
	seen := map[int]bool{}
	for _, in := range s.Preamble {
		seen[in.Reg] = true
	}
	return len(seen)
}

// Trace symbolically executes the schedule for the given number of
// iterations and returns the memory address of every access in
// execution order (iteration-major, program order within an
// iteration).
func (s *Schedule) Trace(iterations int) []int {
	regs := map[int]int{}
	for _, in := range s.Preamble {
		regs[in.Reg] = in.Value
	}
	var trace []int
	for it := 0; it < iterations; it++ {
		for _, st := range s.Steps {
			trace = append(trace, regs[st.Reg])
			regs[st.Reg] += st.PostModify
			for _, in := range st.Extra {
				switch in.Kind {
				case OpAdd:
					regs[in.Reg] += in.Value
				case OpLoad:
					regs[in.Reg] = in.Value
				}
			}
		}
	}
	return trace
}

// Verify checks that the schedule's trace matches the addresses the
// source loop dictates: access i of iteration t must read
// base + first + t*stride + offset(i). It returns the first mismatch
// as an error, or nil.
func (s *Schedule) Verify(iterations int) error {
	trace := s.Trace(iterations)
	n := s.Pattern.N()
	for it := 0; it < iterations; it++ {
		v := s.First + it*s.Pattern.Stride
		for i := 0; i < n; i++ {
			want := s.Base + v + s.Pattern.Offsets[i]
			got := trace[it*n+i]
			if got != want {
				return fmt.Errorf("agu: iteration %d access a%d: address %d, want %d", it, i+1, got, want)
			}
		}
	}
	return nil
}
