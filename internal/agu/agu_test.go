package agu

import (
	"math/rand"
	"strings"
	"testing"

	"dspaddr/internal/core"
	"dspaddr/internal/model"
)

func paperAllocation(t *testing.T, k int) (*core.Result, model.AGUSpec) {
	t.Helper()
	spec := model.AGUSpec{Registers: k, ModifyRange: 1}
	res, err := core.Allocate(model.PaperExample(), core.Config{AGU: spec})
	if err != nil {
		t.Fatal(err)
	}
	return res, spec
}

func TestBuildAndVerifyPaperExample(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		res, spec := paperAllocation(t, k)
		sched, err := Build(res.Pattern, res.Assignment, spec, 1000, 2)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if err := sched.Verify(25); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
	}
}

func TestUnitCostMatchesWrapObjective(t *testing.T) {
	res, spec := paperAllocation(t, 2)
	sched, err := Build(res.Pattern, res.Assignment, spec, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The schedule always performs wrap updates, so its unit cost per
	// iteration equals the assignment's wrap-inclusive cost.
	want := res.Assignment.Cost(res.Pattern, spec.ModifyRange, true)
	if got := sched.UnitCostPerIteration(); got != want {
		t.Fatalf("UnitCostPerIteration = %d, want %d", got, want)
	}
}

func TestBuildRejectsBadInputs(t *testing.T) {
	pat := model.PaperExample()
	spec := model.AGUSpec{Registers: 1, ModifyRange: 1}
	good := model.Assignment{Paths: []model.Path{{0, 1, 2, 3, 4, 5, 6}}}
	if _, err := Build(model.Pattern{}, good, spec, 0, 0); err == nil {
		t.Fatal("empty pattern accepted")
	}
	if _, err := Build(pat, good, model.AGUSpec{}, 0, 0); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := Build(pat, model.Assignment{Paths: []model.Path{{0}}}, spec, 0, 0); err == nil {
		t.Fatal("partial assignment accepted")
	}
	two := model.Assignment{Paths: []model.Path{{0, 2, 4, 5}, {1, 3, 6}}}
	if _, err := Build(pat, two, spec, 0, 0); err == nil {
		t.Fatal("assignment over register budget accepted")
	}
}

func TestPreambleLoadsFirstAddresses(t *testing.T) {
	res, spec := paperAllocation(t, 2)
	base, first := 500, 2
	sched, err := Build(res.Pattern, res.Assignment, spec, base, first)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Preamble) != res.Assignment.Registers() {
		t.Fatalf("preamble length %d, want %d", len(sched.Preamble), res.Assignment.Registers())
	}
	for r, in := range sched.Preamble {
		if in.Kind != OpLoad || in.Reg != r {
			t.Fatalf("preamble[%d] = %v", r, in)
		}
		head := res.Assignment.Paths[r][0]
		if want := base + first + res.Pattern.Offsets[head]; in.Value != want {
			t.Fatalf("preamble[%d] loads %d, want %d", r, in.Value, want)
		}
	}
	if sched.RegistersUsed() != res.Assignment.Registers() {
		t.Fatalf("RegistersUsed = %d", sched.RegistersUsed())
	}
}

func TestPostModifyWithinRange(t *testing.T) {
	res, spec := paperAllocation(t, 2)
	sched, err := Build(res.Pattern, res.Assignment, spec, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sched.Steps {
		if st.PostModify != 0 && len(st.Extra) != 0 {
			t.Fatalf("step a%d has both free and explicit updates", st.Access+1)
		}
		if st.PostModify < -spec.ModifyRange || st.PostModify > spec.ModifyRange {
			t.Fatalf("post-modify %d out of range M=%d", st.PostModify, spec.ModifyRange)
		}
		for _, in := range st.Extra {
			if in.Kind != OpAdd {
				t.Fatalf("extra instruction %v is not ADAR", in)
			}
			if v := in.Value; v >= -spec.ModifyRange && v <= spec.ModifyRange && v != 0 {
				t.Fatalf("explicit update %d would fit a free post-modify", v)
			}
		}
	}
}

func TestVerifyDetectsCorruptSchedule(t *testing.T) {
	res, spec := paperAllocation(t, 2)
	sched, err := Build(res.Pattern, res.Assignment, spec, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	sched.Preamble[0].Value += 7 // corrupt a register's start address
	if err := sched.Verify(3); err == nil {
		t.Fatal("Verify accepted a corrupted schedule")
	} else if !strings.Contains(err.Error(), "iteration 0") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestTraceLengthAndDeterminism(t *testing.T) {
	res, spec := paperAllocation(t, 2)
	sched, err := Build(res.Pattern, res.Assignment, spec, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr1 := sched.Trace(4)
	tr2 := sched.Trace(4)
	if len(tr1) != 4*res.Pattern.N() {
		t.Fatalf("trace length = %d", len(tr1))
	}
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

// Property: any valid allocation over random patterns yields a
// schedule whose trace matches the source loop exactly — the
// end-to-end correctness statement of the whole allocator.
func TestRandomAllocationsVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(16)
		offs := make([]int, n)
		for i := range offs {
			offs[i] = rng.Intn(19) - 9
		}
		pat := model.Pattern{Array: "A", Stride: 1 + rng.Intn(3), Offsets: offs}
		spec := model.AGUSpec{Registers: 1 + rng.Intn(4), ModifyRange: rng.Intn(3)}
		res, err := core.Allocate(pat, core.Config{AGU: spec, InterIteration: rng.Intn(2) == 0})
		if err != nil {
			t.Fatal(err)
		}
		sched, err := Build(pat, res.Assignment, spec, rng.Intn(1000), rng.Intn(10))
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Verify(12); err != nil {
			t.Fatalf("trial %d: %v (pattern %v, %v)", trial, err, pat, spec)
		}
	}
}

func TestInstrString(t *testing.T) {
	if got := (Instr{Kind: OpLoad, Reg: 0, Value: 42}).String(); got != "LDAR AR0, #42" {
		t.Fatalf("String = %q", got)
	}
	if got := (Instr{Kind: OpAdd, Reg: 2, Value: -3}).String(); got != "ADAR AR2, #-3" {
		t.Fatalf("String = %q", got)
	}
	if got := OpKind(9).String(); got != "OpKind(9)" {
		t.Fatalf("String = %q", got)
	}
}
