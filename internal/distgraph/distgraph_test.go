package distgraph

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dspaddr/internal/model"
)

// fig1Edges is the exact edge set of the paper's Figure 1 (0-based):
// the zero-cost relations of the example pattern (1,0,2,-1,1,0,-2)
// under M=1.
var fig1Edges = [][2]int{
	{0, 1}, {0, 2}, {0, 4}, {0, 5},
	{1, 3}, {1, 4}, {1, 5},
	{2, 4},
	{3, 5}, {3, 6},
	{4, 5},
}

func TestFigure1EdgeSet(t *testing.T) {
	dg := MustBuild(model.PaperExample(), 1)
	if got := dg.Edges(); !reflect.DeepEqual(got, fig1Edges) {
		t.Fatalf("Figure 1 edges =\n%v\nwant\n%v", got, fig1Edges)
	}
	if dg.EdgeCount() != len(fig1Edges) {
		t.Fatalf("EdgeCount = %d, want %d", dg.EdgeCount(), len(fig1Edges))
	}
	if !dg.Intra.IsDAG() {
		t.Fatal("distance graph must be a DAG")
	}
}

func TestPaperExamplePath(t *testing.T) {
	dg := MustBuild(model.PaperExample(), 1)
	// The paper: subsequence (a1,a3,a5,a6) is a path in G.
	p := model.Path{0, 2, 4, 5}
	if !dg.Intra.IsPath([]int(p)) {
		t.Fatal("(a1,a3,a5,a6) should be a path in Figure 1")
	}
	if !dg.PathIsZeroCost(p, false) {
		t.Fatal("(a1,a3,a5,a6) should be zero-cost intra-iteration")
	}
	// Its wrap transition has distance 2 > M.
	if dg.PathIsZeroCost(p, true) {
		t.Fatal("(a1,a3,a5,a6) should not be zero-cost with wrap")
	}
}

func TestZeroIntraMatchesCostModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(15)
		offs := make([]int, n)
		for i := range offs {
			offs[i] = rng.Intn(17) - 8
		}
		pat := model.Pattern{Array: "A", Stride: 1, Offsets: offs}
		m := rng.Intn(4)
		dg := MustBuild(pat, m)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want := model.TransitionCost(pat.Distance(i, j), m) == 0
				if got := dg.ZeroIntra(i, j); got != want {
					t.Fatalf("ZeroIntra(%d,%d) = %v, want %v (pattern %v M=%d)", i, j, got, want, pat, m)
				}
			}
		}
	}
}

func TestZeroWrap(t *testing.T) {
	dg := MustBuild(model.PaperExample(), 1)
	// a7 -> a7: distance -2+1-(-2) = 1, zero-cost.
	if !dg.ZeroWrap(6, 6) {
		t.Fatal("a7 self wrap should be zero-cost")
	}
	// a6 -> a1: distance 1+1-0 = 2 > 1.
	if dg.ZeroWrap(5, 0) {
		t.Fatal("a6->a1 wrap should cost")
	}
}

func TestCoverIsZeroCost(t *testing.T) {
	dg := MustBuild(model.PaperExample(), 1)
	a := model.Assignment{Paths: []model.Path{{0, 2, 4, 5}, {1, 3, 6}}}
	if !dg.CoverIsZeroCost(a, false) {
		t.Fatal("two-path cover should be zero-cost intra-iteration")
	}
	if dg.CoverIsZeroCost(a, true) {
		t.Fatal("two-path cover should have wrap costs")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(model.Pattern{}, 1); err == nil {
		t.Fatal("empty pattern accepted")
	}
	if _, err := Build(model.PaperExample(), -1); err == nil {
		t.Fatal("negative M accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild should panic on bad input")
		}
	}()
	MustBuild(model.Pattern{}, 1)
}

func TestNodeLabel(t *testing.T) {
	pat := model.PaperExample()
	tests := []struct {
		i    int
		want string
	}{
		{0, "a1: A[i+1]"},
		{1, "a2: A[i]"},
		{3, "a4: A[i-1]"},
	}
	for _, tt := range tests {
		if got := NodeLabel(pat, tt.i); got != tt.want {
			t.Errorf("NodeLabel(%d) = %q, want %q", tt.i, got, tt.want)
		}
	}
	anon := model.Pattern{Stride: 1, Offsets: []int{0}}
	if got := NodeLabel(anon, 0); got != "a1: A[i]" {
		t.Errorf("anon label = %q", got)
	}
}

func TestDOTContainsAllNodes(t *testing.T) {
	dg := MustBuild(model.PaperExample(), 1)
	dot := dg.DOT("fig1")
	for _, want := range []string{"a1: A[i+1]", "a7: A[i-2]", "n0 -> n1", "digraph fig1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestLargerModifyRangeAddsEdges(t *testing.T) {
	pat := model.PaperExample()
	e1 := MustBuild(pat, 1).EdgeCount()
	e2 := MustBuild(pat, 2).EdgeCount()
	e4 := MustBuild(pat, 4).EdgeCount()
	if !(e1 < e2 && e2 < e4) {
		t.Fatalf("edge counts should grow with M: %d %d %d", e1, e2, e4)
	}
	// M large enough connects every forward pair: n*(n-1)/2 edges.
	if e4 != 21 {
		t.Fatalf("M=4 should give complete forward graph, got %d edges", e4)
	}
}
