// Package distgraph builds the paper's distance-graph model G = (V, E)
// of an array access pattern: one node per access, and an edge
// (a_i, a_j) with i < j whenever the address of a_j can be derived from
// the address of a_i by a zero-cost post-modify, i.e. the address
// distance lies within the AGU's modify range M. Figure 1 of the paper
// is the distance graph of the example pattern (offsets 1,0,2,-1,1,0,-2)
// for M = 1.
//
// Inter-iteration ("wrap") relations — the update from a register's
// last access in iteration t to its first access in iteration t+1 —
// are exposed as predicates rather than materialized edges, because
// they depend on which accesses end up first/last on a register.
package distgraph

import (
	"fmt"

	"dspaddr/internal/graph"
	"dspaddr/internal/model"
)

// Graph couples a pattern with its zero-cost distance graph for a given
// modify range (and, optionally, a set of index-register values that
// widen the zero-cost predicate — see model.TransitionCostIndexed).
type Graph struct {
	// Pattern is the access pattern the graph models.
	Pattern model.Pattern
	// M is the AGU modify range used to classify transitions.
	M int
	// Index holds the AGU's index-register values; an update matching
	// ±value is also zero-cost. Empty for the paper's base model.
	Index []int
	// Intra is the intra-iteration zero-cost graph: edge i->j (i<j) iff
	// the update from i to j is free. Edge weights store the signed
	// distance. It is a DAG by construction.
	Intra *graph.Digraph
}

// Build constructs the distance graph of pat for modify range m.
func Build(pat model.Pattern, m int) (*Graph, error) {
	return BuildIndexed(pat, m, nil)
}

// BuildIndexed constructs the distance graph under the indexed cost
// model: updates within the modify range or matching ±(an index value)
// are zero-cost edges.
func BuildIndexed(pat model.Pattern, m int, index []int) (*Graph, error) {
	dg := &Graph{Index: append([]int(nil), index...)}
	if err := dg.Rebuild(pat, m); err != nil {
		return nil, err
	}
	return dg, nil
}

// Rebuild reconstructs the graph in place for a new pattern and modify
// range, reusing the adjacency storage of the previous build (the
// graph's Index set is kept). It is the allocation-lean form of Build
// used by per-worker solver scratch: one Graph value serves a stream
// of requests instead of being reallocated per solve. Node display
// labels are not materialized — DOT derives them on demand.
func (dg *Graph) Rebuild(pat model.Pattern, m int) error {
	if err := pat.Validate(); err != nil {
		return err
	}
	if m < 0 {
		return fmt.Errorf("distgraph: modify range must be non-negative, got %d", m)
	}
	n := pat.N()
	dg.Pattern = pat
	dg.M = m
	if dg.Intra == nil {
		dg.Intra = graph.New(n)
	} else {
		dg.Intra.Reset(n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := pat.Distance(i, j)
			if dg.zeroDist(d) {
				if err := dg.Intra.AddEdge(i, j, d); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// zeroDist reports whether an update by d is free under the graph's
// cost model.
func (dg *Graph) zeroDist(d int) bool {
	return model.TransitionCostIndexed(d, dg.M, dg.Index) == 0
}

// MustBuild is Build for known-good inputs; it panics on error. It is
// convenient for fixtures and examples.
func MustBuild(pat model.Pattern, m int) *Graph {
	g, err := Build(pat, m)
	if err != nil {
		panic(err)
	}
	return g
}

// NodeLabel renders the paper-style node label for access i, e.g.
// "a1: A[i+1]".
func NodeLabel(pat model.Pattern, i int) string {
	d := pat.Offsets[i]
	arr := pat.Array
	if arr == "" {
		arr = "A"
	}
	switch {
	case d > 0:
		return fmt.Sprintf("a%d: %s[i+%d]", i+1, arr, d)
	case d < 0:
		return fmt.Sprintf("a%d: %s[i%d]", i+1, arr, d)
	default:
		return fmt.Sprintf("a%d: %s[i]", i+1, arr)
	}
}

// N returns the number of accesses.
func (dg *Graph) N() int { return dg.Pattern.N() }

// ZeroIntra reports whether the intra-iteration transition i->j (i<j)
// is zero-cost.
func (dg *Graph) ZeroIntra(i, j int) bool { return dg.Intra.HasEdge(i, j) }

// ZeroWrap reports whether the inter-iteration transition from access
// last (iteration t) to access first (iteration t+1) is zero-cost.
func (dg *Graph) ZeroWrap(last, first int) bool {
	return dg.zeroDist(dg.Pattern.WrapDistance(last, first))
}

// PathCost returns the number of unit-cost computations of the
// register subsequence p under the graph's cost model.
func (dg *Graph) PathCost(p model.Path, wrap bool) int {
	return p.CostIndexed(dg.Pattern, dg.M, dg.Index, wrap)
}

// PathIsZeroCost reports whether the register subsequence p incurs no
// unit-cost computation: all intra transitions zero and, if wrap is
// set, the loop-back transition too.
func (dg *Graph) PathIsZeroCost(p model.Path, wrap bool) bool {
	return dg.PathCost(p, wrap) == 0
}

// CoverIsZeroCost reports whether every path of the assignment is
// zero-cost under the graph's cost model.
func (dg *Graph) CoverIsZeroCost(a model.Assignment, wrap bool) bool {
	return a.CostIndexed(dg.Pattern, dg.M, dg.Index, wrap) == 0
}

// DOT renders the intra-iteration distance graph in Graphviz syntax;
// the output for the paper's example pattern reproduces Figure 1.
// Node labels are derived from the pattern on demand — the solve path
// never pays for their formatting.
func (dg *Graph) DOT(name string) string {
	return dg.Intra.DOTFunc(name, func(i int) string { return NodeLabel(dg.Pattern, i) })
}

// EdgeCount returns the number of intra-iteration zero-cost edges.
func (dg *Graph) EdgeCount() int { return dg.Intra.E() }

// Edges lists all intra-iteration zero-cost edges as (from, to) pairs
// in lexicographic order.
func (dg *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < dg.N(); u++ {
		for _, e := range dg.Intra.Out(u) {
			out = append(out, [2]int{u, e.To})
		}
	}
	return out
}
