package dspsim

import (
	"strings"
	"testing"
)

func newMachine(t *testing.T, ars, m, mem int) *Machine {
	t.Helper()
	mc, err := New(Config{AddressRegisters: ars, ModifyRange: m, MemWords: mem})
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{AddressRegisters: 0, ModifyRange: 1, MemWords: 8}); err == nil {
		t.Fatal("zero ARs accepted")
	}
	if _, err := New(Config{AddressRegisters: 1, ModifyRange: -1, MemWords: 8}); err == nil {
		t.Fatal("negative M accepted")
	}
	if _, err := New(Config{AddressRegisters: 1, ModifyRange: 1, MemWords: 0}); err == nil {
		t.Fatal("zero memory accepted")
	}
}

func TestStraightLineExecution(t *testing.T) {
	m := newMachine(t, 2, 1, 16)
	m.Mem[5] = 7
	m.Mem[6] = 3
	prog := []Instruction{
		{Op: LDAR, Reg: 0, Imm: 5},
		{Op: LDACC, Imm: 0},
		{Op: ADD, Reg: 0, Mod: 1},  // acc += mem[5]; AR0 -> 6
		{Op: ADD, Reg: 0, Mod: -1}, // acc += mem[6]; AR0 -> 5
		{Op: ST, Reg: 0},           // mem[5] = 10
		{Op: HALT},
	}
	if err := m.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("machine should have halted")
	}
	if m.Acc != 10 || m.Mem[5] != 10 {
		t.Fatalf("acc=%d mem[5]=%d, want 10", m.Acc, m.Mem[5])
	}
	if m.Cycles != 6 {
		t.Fatalf("cycles = %d, want 6", m.Cycles)
	}
	wantTrace := []MemEvent{{5, false}, {6, false}, {5, true}}
	if len(m.Trace) != len(wantTrace) {
		t.Fatalf("trace = %v", m.Trace)
	}
	for i, e := range wantTrace {
		if m.Trace[i] != e {
			t.Fatalf("trace[%d] = %v, want %v", i, m.Trace[i], e)
		}
	}
}

func TestMulAndLD(t *testing.T) {
	m := newMachine(t, 1, 0, 8)
	m.Mem[0] = 6
	m.Mem[1] = 7
	prog := []Instruction{
		{Op: LDAR, Reg: 0, Imm: 0},
		{Op: LD, Reg: 0},
		{Op: ADAR, Reg: 0, Imm: 1},
		{Op: MUL, Reg: 0},
		{Op: HALT},
	}
	if err := m.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	if m.Acc != 42 {
		t.Fatalf("acc = %d, want 42", m.Acc)
	}
}

func TestHardwareLoop(t *testing.T) {
	m := newMachine(t, 1, 1, 64)
	for i := 0; i < 10; i++ {
		m.Mem[i] = i + 1
	}
	prog := []Instruction{
		{Op: LDAR, Reg: 0, Imm: 0},
		{Op: LDACC, Imm: 0},
		{Op: LDCTR, Imm: 10},
		{Op: ADD, Reg: 0, Mod: 1}, // body
		{Op: DBNZ, Imm: 3},
		{Op: HALT},
	}
	if err := m.Run(prog, 1000); err != nil {
		t.Fatal(err)
	}
	if m.Acc != 55 {
		t.Fatalf("acc = %d, want 55", m.Acc)
	}
	if len(m.Trace) != 10 {
		t.Fatalf("trace length = %d", len(m.Trace))
	}
	// Cycles: 3 setup + 10*(ADD+DBNZ) + HALT = 24.
	if m.Cycles != 24 {
		t.Fatalf("cycles = %d, want 24", m.Cycles)
	}
}

func TestModifyRangeEnforced(t *testing.T) {
	m := newMachine(t, 1, 1, 16)
	prog := []Instruction{
		{Op: LDAR, Reg: 0, Imm: 0},
		{Op: LD, Reg: 0, Mod: 2}, // exceeds M=1
		{Op: HALT},
	}
	err := m.Run(prog, 100)
	if err == nil || !strings.Contains(err.Error(), "modify range") {
		t.Fatalf("expected modify-range error, got %v", err)
	}
}

func TestMemoryBoundsEnforced(t *testing.T) {
	m := newMachine(t, 1, 1, 4)
	prog := []Instruction{
		{Op: LDAR, Reg: 0, Imm: 9},
		{Op: LD, Reg: 0},
		{Op: HALT},
	}
	if err := m.Run(prog, 100); err == nil {
		t.Fatal("out-of-bounds access accepted")
	}
	m.Reset()
	prog[0].Imm = -1
	if err := m.Run(prog, 100); err == nil {
		t.Fatal("negative address accepted")
	}
}

func TestRegisterBoundsEnforced(t *testing.T) {
	m := newMachine(t, 1, 1, 4)
	for _, prog := range [][]Instruction{
		{{Op: LDAR, Reg: 3, Imm: 0}},
		{{Op: ADAR, Reg: -1, Imm: 0}},
		{{Op: LD, Reg: 7}},
	} {
		m.Reset()
		if err := m.Run(prog, 10); err == nil {
			t.Fatalf("bad register accepted: %v", prog[0])
		}
	}
}

func TestRunawayLoopCaught(t *testing.T) {
	m := newMachine(t, 1, 1, 4)
	prog := []Instruction{
		{Op: LDCTR, Imm: 1 << 30},
		{Op: NOP},
		{Op: DBNZ, Imm: 1},
		{Op: HALT},
	}
	err := m.Run(prog, 500)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("expected budget error, got %v", err)
	}
}

func TestPCOutOfRange(t *testing.T) {
	m := newMachine(t, 1, 1, 4)
	if err := m.Run([]Instruction{{Op: NOP}}, 10); err == nil {
		t.Fatal("running off the end should error")
	}
}

func TestIllegalOpcode(t *testing.T) {
	m := newMachine(t, 1, 1, 4)
	if err := m.Run([]Instruction{{Op: Opcode(99)}}, 10); err == nil {
		t.Fatal("illegal opcode accepted")
	}
}

func TestResetPreservesMemory(t *testing.T) {
	m := newMachine(t, 1, 1, 4)
	m.Mem[2] = 42
	m.Acc = 5
	m.Trace = []MemEvent{{1, false}}
	m.Reset()
	if m.Acc != 0 || m.Trace != nil || m.Cycles != 0 {
		t.Fatal("Reset left state behind")
	}
	if m.Mem[2] != 42 {
		t.Fatal("Reset cleared memory")
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := `
; preamble
LDAR AR0, #100
LDACC #0
LDCTR #3
ADD *(AR0)+1   ; body
ADD *(AR0)-1
ADD *(AR0)
ADAR AR0, #5
ST *(AR0)+1
MUL *(AR1)
LD *(AR0)
NOP
DBNZ 3
HALT
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 13 {
		t.Fatalf("assembled %d instructions", len(prog))
	}
	// Round trip: disassemble (without index) and re-assemble.
	var lines []string
	for _, in := range prog {
		lines = append(lines, in.String())
	}
	prog2, err := Assemble(strings.Join(lines, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if prog[i] != prog2[i] {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, prog[i], prog2[i])
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"FOO",
		"LDAR AR0",
		"LDAR ARX, #1",
		"LDAR AR0, 5",
		"LDACC",
		"LDACC #x",
		"DBNZ",
		"DBNZ x",
		"LD AR0",
		"LD *(AR0",
		"LD *(AR0)x",
		"ADD",
		"LDAR AR-2, #0",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) accepted", src)
		}
	}
}

func TestDisassembleListing(t *testing.T) {
	out := Disassemble([]Instruction{{Op: NOP}, {Op: HALT}})
	if !strings.Contains(out, "0  NOP") || !strings.Contains(out, "1  HALT") {
		t.Fatalf("listing:\n%s", out)
	}
}

func TestInstructionString(t *testing.T) {
	tests := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: LDAR, Reg: 1, Imm: -4}, "LDAR AR1, #-4"},
		{Instruction{Op: LDACC, Imm: 0}, "LDACC #0"},
		{Instruction{Op: LD, Reg: 0, Mod: 1}, "LD *(AR0)+1"},
		{Instruction{Op: ST, Reg: 2, Mod: -2}, "ST *(AR2)-2"},
		{Instruction{Op: ADD, Reg: 3}, "ADD *(AR3)"},
		{Instruction{Op: DBNZ, Imm: 7}, "DBNZ 7"},
		{Instruction{Op: Opcode(42)}, "??? 42"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
	if Opcode(42).String() != "Opcode(42)" {
		t.Error("unknown opcode name")
	}
}

func TestAddressesHelper(t *testing.T) {
	m := newMachine(t, 1, 1, 8)
	prog := []Instruction{
		{Op: LDAR, Reg: 0, Imm: 3},
		{Op: LD, Reg: 0, Mod: 1},
		{Op: LD, Reg: 0},
		{Op: HALT},
	}
	if err := m.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	got := m.Addresses()
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("Addresses = %v", got)
	}
}
