// Package dspsim provides a small TI-C2x-flavoured DSP instruction set
// and cycle-accurate simulator: an accumulator data path, a file of
// address registers with free bounded post-modify (the AGU), explicit
// pointer arithmetic, and a hardware loop counter. It executes the code
// the generator emits, records the address trace of every memory
// access, and counts cycles — the substrate for the paper's code-size
// and speed experiments.
package dspsim

import (
	"fmt"
	"strconv"
	"strings"
)

// Opcode enumerates the machine's instructions.
type Opcode int

const (
	// NOP does nothing for one cycle.
	NOP Opcode = iota
	// HALT stops execution.
	HALT
	// LDAR loads an address register with an immediate address.
	LDAR
	// ADAR adds a signed immediate to an address register — the
	// paper's unit-cost address computation.
	ADAR
	// LDACC loads the accumulator with an immediate.
	LDACC
	// LD loads mem[ARk] into the accumulator, then post-modifies ARk.
	LD
	// ADD adds mem[ARk] to the accumulator, then post-modifies ARk.
	ADD
	// MUL multiplies the accumulator by mem[ARk], then post-modifies.
	MUL
	// ST stores the accumulator to mem[ARk], then post-modifies ARk.
	ST
	// LDCTR loads the hardware loop counter with an immediate.
	LDCTR
	// DBNZ decrements the loop counter and branches to the absolute
	// instruction index Imm while the counter is non-zero.
	DBNZ
	// LDIR loads an index (modify) register with an immediate. Memory
	// accesses may post-modify their address register by ±(an index
	// register's value) for free — the indexed AGU extension.
	LDIR
	// LDMOD arms modulo (circular-buffer) addressing on an address
	// register: post-modifies of ARk wrap inside [Imm, Imm+Mod). A
	// length of zero disarms it.
	LDMOD
	// MULI multiplies the accumulator by an immediate (coefficient
	// taps of filter kernels).
	MULI
	// LDD/ADDD/STD are direct-addressed data operations on the memory
	// word Imm (scratch accumulators), bypassing the AGU.
	LDD
	// ADDD adds the directly addressed word to the accumulator.
	ADDD
	// STD stores the accumulator to the directly addressed word.
	STD
)

var opNames = map[Opcode]string{
	NOP: "NOP", HALT: "HALT", LDAR: "LDAR", ADAR: "ADAR", LDACC: "LDACC",
	LD: "LD", ADD: "ADD", MUL: "MUL", ST: "ST", LDCTR: "LDCTR", DBNZ: "DBNZ",
	LDIR: "LDIR", LDMOD: "LDMOD", MULI: "MULI", LDD: "LDD", ADDD: "ADDD", STD: "STD",
}

// String returns the mnemonic.
func (op Opcode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("Opcode(%d)", int(op))
}

// IsMemAccess reports whether the opcode reads or writes data memory
// through an address register.
func (op Opcode) IsMemAccess() bool {
	return op == LD || op == ADD || op == MUL || op == ST
}

// Instruction is one machine word.
type Instruction struct {
	Op Opcode
	// Reg selects the address register for LDAR/ADAR and memory
	// accesses, and the index register for LDIR.
	Reg int
	// Imm is the immediate of LDAR/ADAR/LDACC/LDCTR/LDIR and the
	// branch target of DBNZ.
	Imm int
	// Mod is the immediate post-modify distance of a memory access;
	// the machine rejects |Mod| greater than its modify range.
	Mod int
	// IdxReg selects an index-register post-modify for a memory
	// access: 0 means none, k means IR(k-1). Mutually exclusive with a
	// non-zero Mod.
	IdxReg int
	// IdxNeg subtracts the index register instead of adding it.
	IdxNeg bool
}

// String disassembles the instruction.
func (in Instruction) String() string {
	switch in.Op {
	case NOP, HALT:
		return in.Op.String()
	case LDAR, ADAR:
		return fmt.Sprintf("%s AR%d, #%d", in.Op, in.Reg, in.Imm)
	case LDIR:
		return fmt.Sprintf("LDIR IR%d, #%d", in.Reg, in.Imm)
	case LDMOD:
		return fmt.Sprintf("LDMOD AR%d, #%d, #%d", in.Reg, in.Imm, in.Mod)
	case LDACC, LDCTR, MULI, LDD, ADDD, STD:
		return fmt.Sprintf("%s #%d", in.Op, in.Imm)
	case DBNZ:
		return fmt.Sprintf("DBNZ %d", in.Imm)
	case LD, ADD, MUL, ST:
		switch {
		case in.IdxReg > 0 && in.IdxNeg:
			return fmt.Sprintf("%s *(AR%d)-IR%d", in.Op, in.Reg, in.IdxReg-1)
		case in.IdxReg > 0:
			return fmt.Sprintf("%s *(AR%d)+IR%d", in.Op, in.Reg, in.IdxReg-1)
		case in.Mod == 0:
			return fmt.Sprintf("%s *(AR%d)", in.Op, in.Reg)
		default:
			return fmt.Sprintf("%s *(AR%d)%+d", in.Op, in.Reg, in.Mod)
		}
	default:
		return fmt.Sprintf("??? %d", int(in.Op))
	}
}

// Disassemble renders a program listing with instruction indices.
func Disassemble(prog []Instruction) string {
	var b strings.Builder
	for i, in := range prog {
		fmt.Fprintf(&b, "%4d  %s\n", i, in)
	}
	return b.String()
}

// Assemble parses the textual form produced by Disassemble (without
// the index column) or hand-written source. One instruction per line;
// blank lines and ";" comments are ignored. Example:
//
//	LDAR AR0, #100
//	LD *(AR0)+1
//	ADAR AR0, #-4
//	DBNZ 1
//	HALT
func Assemble(src string) ([]Instruction, error) {
	var prog []Instruction
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		in, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("dspsim: line %d: %w", ln+1, err)
		}
		prog = append(prog, in)
	}
	return prog, nil
}

func parseLine(line string) (Instruction, error) {
	fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
	mn := strings.ToUpper(fields[0])
	rest := fields[1:]
	switch mn {
	case "NOP":
		return Instruction{Op: NOP}, nil
	case "HALT":
		return Instruction{Op: HALT}, nil
	case "LDAR", "ADAR":
		op := LDAR
		if mn == "ADAR" {
			op = ADAR
		}
		if len(rest) != 2 {
			return Instruction{}, fmt.Errorf("%s wants register and immediate", mn)
		}
		reg, err := parseAR(rest[0])
		if err != nil {
			return Instruction{}, err
		}
		imm, err := parseImm(rest[1])
		if err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: op, Reg: reg, Imm: imm}, nil
	case "LDIR":
		if len(rest) != 2 {
			return Instruction{}, fmt.Errorf("LDIR wants register and immediate")
		}
		reg, err := parseIR(rest[0])
		if err != nil {
			return Instruction{}, err
		}
		imm, err := parseImm(rest[1])
		if err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: LDIR, Reg: reg, Imm: imm}, nil
	case "LDACC", "LDCTR", "MULI", "LDD", "ADDD", "STD":
		ops := map[string]Opcode{
			"LDACC": LDACC, "LDCTR": LDCTR, "MULI": MULI,
			"LDD": LDD, "ADDD": ADDD, "STD": STD,
		}
		if len(rest) != 1 {
			return Instruction{}, fmt.Errorf("%s wants one immediate", mn)
		}
		imm, err := parseImm(rest[0])
		if err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: ops[mn], Imm: imm}, nil
	case "LDMOD":
		if len(rest) != 3 {
			return Instruction{}, fmt.Errorf("LDMOD wants register, base and length")
		}
		reg, err := parseAR(rest[0])
		if err != nil {
			return Instruction{}, err
		}
		base, err := parseImm(rest[1])
		if err != nil {
			return Instruction{}, err
		}
		length, err := parseImm(rest[2])
		if err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: LDMOD, Reg: reg, Imm: base, Mod: length}, nil
	case "DBNZ":
		if len(rest) != 1 {
			return Instruction{}, fmt.Errorf("DBNZ wants a target index")
		}
		imm, err := strconv.Atoi(rest[0])
		if err != nil {
			return Instruction{}, fmt.Errorf("bad DBNZ target %q", rest[0])
		}
		return Instruction{Op: DBNZ, Imm: imm}, nil
	case "LD", "ADD", "MUL", "ST":
		ops := map[string]Opcode{"LD": LD, "ADD": ADD, "MUL": MUL, "ST": ST}
		if len(rest) != 1 {
			return Instruction{}, fmt.Errorf("%s wants one memory operand", mn)
		}
		in, err := parseMemOperand(rest[0])
		if err != nil {
			return Instruction{}, err
		}
		in.Op = ops[mn]
		return in, nil
	default:
		return Instruction{}, fmt.Errorf("unknown mnemonic %q", mn)
	}
}

func parseAR(s string) (int, error) {
	up := strings.ToUpper(s)
	if !strings.HasPrefix(up, "AR") {
		return 0, fmt.Errorf("bad address register %q", s)
	}
	n, err := strconv.Atoi(up[2:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad address register %q", s)
	}
	return n, nil
}

func parseImm(s string) (int, error) {
	if !strings.HasPrefix(s, "#") {
		return 0, fmt.Errorf("immediate must start with '#', got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return n, nil
}

// parseMemOperand parses "*(AR2)", "*(AR2)+1", "*(AR2)-3",
// "*(AR2)+IR0" or "*(AR2)-IR1".
func parseMemOperand(s string) (Instruction, error) {
	if !strings.HasPrefix(s, "*(") {
		return Instruction{}, fmt.Errorf("bad memory operand %q", s)
	}
	close := strings.IndexByte(s, ')')
	if close < 0 {
		return Instruction{}, fmt.Errorf("bad memory operand %q", s)
	}
	reg, err := parseAR(s[2:close])
	if err != nil {
		return Instruction{}, err
	}
	in := Instruction{Reg: reg}
	tail := s[close+1:]
	if tail == "" {
		return in, nil
	}
	up := strings.ToUpper(tail)
	if strings.HasPrefix(up, "+IR") || strings.HasPrefix(up, "-IR") {
		ir, err := parseIR(up[1:])
		if err != nil {
			return Instruction{}, err
		}
		in.IdxReg = ir + 1
		in.IdxNeg = up[0] == '-'
		return in, nil
	}
	mod, err := strconv.Atoi(tail)
	if err != nil {
		return Instruction{}, fmt.Errorf("bad post-modify %q", tail)
	}
	in.Mod = mod
	return in, nil
}

func parseIR(s string) (int, error) {
	up := strings.ToUpper(s)
	if !strings.HasPrefix(up, "IR") {
		return 0, fmt.Errorf("bad index register %q", s)
	}
	n, err := strconv.Atoi(up[2:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad index register %q", s)
	}
	return n, nil
}
