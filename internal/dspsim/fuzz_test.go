package dspsim

import (
	"strings"
	"testing"
)

// FuzzAssemble feeds arbitrary text to the assembler; it must never
// panic, and everything it accepts must survive a
// disassemble/re-assemble round trip.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"LDAR AR0, #100\nLD *(AR0)+1\nHALT",
		"LDIR IR0, #5\nADD *(AR1)-IR0\nDBNZ 0",
		"NOP ; comment",
		"ST *(AR2)-3",
		"BOGUS",
		"LDAR",
		"LD *(AR0",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return
		}
		var lines []string
		for _, in := range prog {
			lines = append(lines, in.String())
		}
		prog2, err := Assemble(strings.Join(lines, "\n"))
		if err != nil {
			t.Fatalf("disassembly of accepted program does not re-assemble: %v\nsource %q", err, src)
		}
		if len(prog) != len(prog2) {
			t.Fatalf("round trip changed length: %d vs %d", len(prog), len(prog2))
		}
		for i := range prog {
			if prog[i] != prog2[i] {
				t.Fatalf("round trip diverged at %d: %+v vs %+v", i, prog[i], prog2[i])
			}
		}
	})
}

// FuzzMachineRun executes arbitrary short programs; the machine must
// fail cleanly (error) rather than panic, and must respect its cycle
// budget.
func FuzzMachineRun(f *testing.F) {
	f.Add(int8(2), int8(0), int8(5), int8(1), int8(3), int8(-1))
	f.Add(int8(10), int8(1), int8(0), int8(0), int8(9), int8(2))
	f.Fuzz(func(t *testing.T, op1, r1, v1, op2, r2, v2 int8) {
		m, err := New(Config{AddressRegisters: 2, IndexRegisters: 1, ModifyRange: 1, MemWords: 16})
		if err != nil {
			t.Fatal(err)
		}
		prog := []Instruction{
			{Op: Opcode(int(op1) % 12), Reg: int(r1), Imm: int(v1), Mod: int(v1) % 3},
			{Op: Opcode(int(op2) % 12), Reg: int(r2), Imm: int(v2), Mod: int(v2) % 3, IdxReg: int(r2) % 2},
			{Op: HALT},
		}
		_ = m.Run(prog, 50) // errors allowed, panics and runaways are not
		if m.Cycles > 50 {
			t.Fatalf("cycle budget exceeded: %d", m.Cycles)
		}
	})
}
