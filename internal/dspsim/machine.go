package dspsim

import (
	"fmt"
)

// MemEvent records one data-memory access during simulation.
type MemEvent struct {
	Addr  int
	Write bool
}

// Config describes the simulated machine.
type Config struct {
	// AddressRegisters is the size of the AR file.
	AddressRegisters int
	// IndexRegisters is the size of the IR (modify register) file;
	// zero models the paper's base AGU.
	IndexRegisters int
	// ModifyRange is M: the largest immediate |post-modify| the AGU
	// performs for free alongside a memory access. Larger immediate
	// modifies in LD/ADD/MUL/ST are an execution error — codegen must
	// emit explicit ADARs. Index-register modifies are always free.
	ModifyRange int
	// MemWords is the data memory size in words.
	MemWords int
}

// Machine is the simulator state.
type Machine struct {
	cfg     Config
	AR      []int
	IR      []int
	modBase []int // per-AR modulo base (valid when modLen > 0)
	modLen  []int // per-AR modulo length; 0 = linear addressing
	Acc     int
	Ctr     int
	Mem     []int
	PC      int
	Cycles  int
	Trace   []MemEvent
	halted  bool
}

// New returns a machine with zeroed registers and memory.
func New(cfg Config) (*Machine, error) {
	if cfg.AddressRegisters < 1 {
		return nil, fmt.Errorf("dspsim: need at least one address register")
	}
	if cfg.ModifyRange < 0 {
		return nil, fmt.Errorf("dspsim: modify range must be non-negative")
	}
	if cfg.MemWords < 1 {
		return nil, fmt.Errorf("dspsim: need at least one word of memory")
	}
	if cfg.IndexRegisters < 0 {
		return nil, fmt.Errorf("dspsim: index register count must be non-negative")
	}
	return &Machine{
		cfg:     cfg,
		AR:      make([]int, cfg.AddressRegisters),
		IR:      make([]int, cfg.IndexRegisters),
		modBase: make([]int, cfg.AddressRegisters),
		modLen:  make([]int, cfg.AddressRegisters),
		Mem:     make([]int, cfg.MemWords),
	}, nil
}

// Halted reports whether the last Run stopped at a HALT.
func (m *Machine) Halted() bool { return m.halted }

// Reset clears registers, cycle count and trace but preserves memory
// contents (so workloads can be reloaded between runs).
func (m *Machine) Reset() {
	for i := range m.AR {
		m.AR[i] = 0
	}
	for i := range m.IR {
		m.IR[i] = 0
	}
	for i := range m.modLen {
		m.modBase[i], m.modLen[i] = 0, 0
	}
	m.Acc, m.Ctr, m.PC, m.Cycles = 0, 0, 0, 0
	m.Trace = nil
	m.halted = false
}

// Run executes the program from instruction 0 until HALT, an error, or
// the cycle budget is exhausted (which is an error — generated loops
// must terminate).
func (m *Machine) Run(prog []Instruction, maxCycles int) error {
	m.PC = 0
	m.halted = false
	for m.Cycles < maxCycles {
		if m.PC < 0 || m.PC >= len(prog) {
			return fmt.Errorf("dspsim: PC %d outside program of %d instructions", m.PC, len(prog))
		}
		in := prog[m.PC]
		m.Cycles++
		switch in.Op {
		case NOP:
			m.PC++
		case HALT:
			m.halted = true
			return nil
		case LDAR:
			if err := m.checkAR(in.Reg); err != nil {
				return err
			}
			m.AR[in.Reg] = in.Imm
			m.PC++
		case ADAR:
			if err := m.checkAR(in.Reg); err != nil {
				return err
			}
			m.AR[in.Reg] += in.Imm
			m.PC++
		case LDACC:
			m.Acc = in.Imm
			m.PC++
		case LDCTR:
			m.Ctr = in.Imm
			m.PC++
		case LDIR:
			if in.Reg < 0 || in.Reg >= len(m.IR) {
				return fmt.Errorf("dspsim: index register IR%d outside file of %d at PC %d", in.Reg, len(m.IR), m.PC)
			}
			m.IR[in.Reg] = in.Imm
			m.PC++
		case LDMOD:
			if err := m.checkAR(in.Reg); err != nil {
				return err
			}
			if in.Mod < 0 {
				return fmt.Errorf("dspsim: negative modulo length %d at PC %d", in.Mod, m.PC)
			}
			m.modBase[in.Reg] = in.Imm
			m.modLen[in.Reg] = in.Mod
			m.PC++
		case MULI:
			m.Acc *= in.Imm
			m.PC++
		case LDD, ADDD, STD:
			if in.Imm < 0 || in.Imm >= len(m.Mem) {
				return fmt.Errorf("dspsim: direct address %d outside memory of %d words at PC %d", in.Imm, len(m.Mem), m.PC)
			}
			switch in.Op {
			case LDD:
				m.Acc = m.Mem[in.Imm]
			case ADDD:
				m.Acc += m.Mem[in.Imm]
			case STD:
				m.Mem[in.Imm] = m.Acc
			}
			m.Trace = append(m.Trace, MemEvent{Addr: in.Imm, Write: in.Op == STD})
			m.PC++
		case DBNZ:
			m.Ctr--
			if m.Ctr > 0 {
				m.PC = in.Imm
			} else {
				m.PC++
			}
		case LD, ADD, MUL, ST:
			if err := m.memAccess(in); err != nil {
				return err
			}
			m.PC++
		default:
			return fmt.Errorf("dspsim: illegal opcode %d at PC %d", int(in.Op), m.PC)
		}
	}
	return fmt.Errorf("dspsim: cycle budget %d exhausted (runaway loop?)", maxCycles)
}

func (m *Machine) memAccess(in Instruction) error {
	if err := m.checkAR(in.Reg); err != nil {
		return err
	}
	post := in.Mod
	switch {
	case in.IdxReg > 0:
		if in.Mod != 0 {
			return fmt.Errorf("dspsim: memory access combines immediate and index post-modify at PC %d", m.PC)
		}
		ir := in.IdxReg - 1
		if ir >= len(m.IR) {
			return fmt.Errorf("dspsim: index register IR%d outside file of %d at PC %d", ir, len(m.IR), m.PC)
		}
		post = m.IR[ir]
		if in.IdxNeg {
			post = -post
		}
	case in.Mod > m.cfg.ModifyRange || in.Mod < -m.cfg.ModifyRange:
		return fmt.Errorf("dspsim: post-modify %d exceeds modify range %d at PC %d", in.Mod, m.cfg.ModifyRange, m.PC)
	}
	addr := m.AR[in.Reg]
	if addr < 0 || addr >= len(m.Mem) {
		return fmt.Errorf("dspsim: address %d outside memory of %d words at PC %d", addr, len(m.Mem), m.PC)
	}
	switch in.Op {
	case LD:
		m.Acc = m.Mem[addr]
	case ADD:
		m.Acc += m.Mem[addr]
	case MUL:
		m.Acc *= m.Mem[addr]
	case ST:
		m.Mem[addr] = m.Acc
	}
	m.Trace = append(m.Trace, MemEvent{Addr: addr, Write: in.Op == ST})
	next := m.AR[in.Reg] + post
	if l := m.modLen[in.Reg]; l > 0 {
		base := m.modBase[in.Reg]
		next = base + floorMod(next-base, l)
	}
	m.AR[in.Reg] = next
	return nil
}

// floorMod returns x mod m with a non-negative result for m > 0.
func floorMod(x, m int) int {
	r := x % m
	if r < 0 {
		r += m
	}
	return r
}

func (m *Machine) checkAR(r int) error {
	if r < 0 || r >= len(m.AR) {
		return fmt.Errorf("dspsim: address register AR%d outside file of %d at PC %d", r, len(m.AR), m.PC)
	}
	return nil
}

// Addresses returns the raw address sequence of the trace.
func (m *Machine) Addresses() []int {
	out := make([]int, len(m.Trace))
	for i, e := range m.Trace {
		out[i] = e.Addr
	}
	return out
}
