package dspsim

import (
	"strings"
	"testing"
)

func TestIndexRegisterPostModify(t *testing.T) {
	m, err := New(Config{AddressRegisters: 1, IndexRegisters: 2, ModifyRange: 1, MemWords: 32})
	if err != nil {
		t.Fatal(err)
	}
	m.Mem[0] = 1
	m.Mem[5] = 2
	m.Mem[10] = 3
	prog := []Instruction{
		{Op: LDIR, Reg: 0, Imm: 5},
		{Op: LDAR, Reg: 0, Imm: 0},
		{Op: LDACC, Imm: 0},
		{Op: ADD, Reg: 0, IdxReg: 1},               // mem[0]; AR0 += 5
		{Op: ADD, Reg: 0, IdxReg: 1},               // mem[5]; AR0 += 5
		{Op: ADD, Reg: 0, IdxReg: 1, IdxNeg: true}, // mem[10]; AR0 -= 5
		{Op: LD, Reg: 0},                           // mem[5]
		{Op: HALT},
	}
	if err := m.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	if m.Acc != 2 {
		t.Fatalf("acc = %d, want mem[5]=2", m.Acc)
	}
	want := []int{0, 5, 10, 5}
	got := m.Addresses()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace = %v, want %v", got, want)
		}
	}
}

func TestIndexRegisterErrors(t *testing.T) {
	m, err := New(Config{AddressRegisters: 1, IndexRegisters: 1, ModifyRange: 1, MemWords: 8})
	if err != nil {
		t.Fatal(err)
	}
	// LDIR to a register outside the file.
	if err := m.Run([]Instruction{{Op: LDIR, Reg: 3, Imm: 1}}, 10); err == nil {
		t.Fatal("out-of-range LDIR accepted")
	}
	m.Reset()
	// Memory access via an index register outside the file.
	if err := m.Run([]Instruction{{Op: LD, Reg: 0, IdxReg: 2}}, 10); err == nil {
		t.Fatal("out-of-range index post-modify accepted")
	}
	m.Reset()
	// Combining immediate and index post-modify is illegal.
	if err := m.Run([]Instruction{{Op: LD, Reg: 0, Mod: 1, IdxReg: 1}}, 10); err == nil {
		t.Fatal("combined post-modify accepted")
	}
	if _, err := New(Config{AddressRegisters: 1, IndexRegisters: -1, MemWords: 8}); err == nil {
		t.Fatal("negative IR count accepted")
	}
}

func TestIndexRegisterNotRangeLimited(t *testing.T) {
	// Index post-modifies are free regardless of the modify range —
	// that is the point of the extension.
	m, err := New(Config{AddressRegisters: 1, IndexRegisters: 1, ModifyRange: 0, MemWords: 64})
	if err != nil {
		t.Fatal(err)
	}
	prog := []Instruction{
		{Op: LDIR, Reg: 0, Imm: 40},
		{Op: LDAR, Reg: 0, Imm: 0},
		{Op: LD, Reg: 0, IdxReg: 1},
		{Op: LD, Reg: 0},
		{Op: HALT},
	}
	if err := m.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	got := m.Addresses()
	if got[0] != 0 || got[1] != 40 {
		t.Fatalf("trace = %v", got)
	}
}

func TestAssembleIndexOperands(t *testing.T) {
	src := `
LDIR IR0, #5
LDIR IR1, #-3
LD *(AR0)+IR0
ADD *(AR1)-IR1
ST *(AR0)+IR0
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog[0].Op != LDIR || prog[0].Reg != 0 || prog[0].Imm != 5 {
		t.Fatalf("LDIR parsed as %+v", prog[0])
	}
	if prog[2].IdxReg != 1 || prog[2].IdxNeg {
		t.Fatalf("+IR0 parsed as %+v", prog[2])
	}
	if prog[3].IdxReg != 2 || !prog[3].IdxNeg {
		t.Fatalf("-IR1 parsed as %+v", prog[3])
	}
	// Round trip through the disassembler.
	var lines []string
	for _, in := range prog {
		lines = append(lines, in.String())
	}
	prog2, err := Assemble(strings.Join(lines, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if prog[i] != prog2[i] {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, prog[i], prog2[i])
		}
	}
}

func TestAssembleIndexErrors(t *testing.T) {
	for _, src := range []string{
		"LDIR",
		"LDIR IR0",
		"LDIR AR0, #1",
		"LDIR IRx, #1",
		"LD *(AR0)+IRx",
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) accepted", src)
		}
	}
}

func TestIndexInstructionString(t *testing.T) {
	tests := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: LDIR, Reg: 1, Imm: 7}, "LDIR IR1, #7"},
		{Instruction{Op: LD, Reg: 0, IdxReg: 1}, "LD *(AR0)+IR0"},
		{Instruction{Op: ST, Reg: 2, IdxReg: 2, IdxNeg: true}, "ST *(AR2)-IR1"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestModuloAddressing(t *testing.T) {
	m, err := New(Config{AddressRegisters: 1, ModifyRange: 1, MemWords: 32})
	if err != nil {
		t.Fatal(err)
	}
	prog := []Instruction{
		{Op: LDAR, Reg: 0, Imm: 10},
		{Op: LDMOD, Reg: 0, Imm: 10, Mod: 3}, // circular buffer [10,13)
		{Op: LD, Reg: 0, Mod: 1},             // 10 -> 11
		{Op: LD, Reg: 0, Mod: 1},             // 11 -> 12
		{Op: LD, Reg: 0, Mod: 1},             // 12 -> wraps to 10
		{Op: LD, Reg: 0, Mod: -1},            // 10 -> wraps to 12
		{Op: LD, Reg: 0},                     // reads 12
		{Op: HALT},
	}
	if err := m.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	want := []int{10, 11, 12, 10, 12}
	got := m.Addresses()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace = %v, want %v", got, want)
		}
	}
}

func TestModuloDisarm(t *testing.T) {
	m, err := New(Config{AddressRegisters: 1, ModifyRange: 1, MemWords: 8})
	if err != nil {
		t.Fatal(err)
	}
	prog := []Instruction{
		{Op: LDAR, Reg: 0, Imm: 0},
		{Op: LDMOD, Reg: 0, Imm: 0, Mod: 2},
		{Op: LD, Reg: 0, Mod: 1}, // 0 -> 1
		{Op: LD, Reg: 0, Mod: 1}, // 1 -> wraps to 0
		{Op: LDMOD, Reg: 0, Imm: 0, Mod: 0},
		{Op: LD, Reg: 0, Mod: 1}, // 0 -> 1 (linear again)
		{Op: LD, Reg: 0, Mod: 1}, // 1 -> 2, no wrap
		{Op: LD, Reg: 0},         // reads 2
		{Op: HALT},
	}
	if err := m.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	got := m.Addresses()
	want := []int{0, 1, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace = %v, want %v", got, want)
		}
	}
}

func TestModuloErrors(t *testing.T) {
	m, err := New(Config{AddressRegisters: 1, ModifyRange: 1, MemWords: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run([]Instruction{{Op: LDMOD, Reg: 5, Imm: 0, Mod: 2}}, 10); err == nil {
		t.Fatal("out-of-range AR accepted")
	}
	m.Reset()
	if err := m.Run([]Instruction{{Op: LDMOD, Reg: 0, Imm: 0, Mod: -1}}, 10); err == nil {
		t.Fatal("negative modulo length accepted")
	}
}

func TestDirectAndImmediateOps(t *testing.T) {
	m, err := New(Config{AddressRegisters: 1, ModifyRange: 1, MemWords: 8})
	if err != nil {
		t.Fatal(err)
	}
	m.Mem[3] = 4
	prog := []Instruction{
		{Op: LDACC, Imm: 5},
		{Op: MULI, Imm: 3}, // 15
		{Op: ADDD, Imm: 3}, // 19
		{Op: STD, Imm: 4},  // mem[4] = 19
		{Op: LDD, Imm: 4},  // ACC = 19
		{Op: HALT},
	}
	if err := m.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	if m.Acc != 19 || m.Mem[4] != 19 {
		t.Fatalf("acc=%d mem[4]=%d", m.Acc, m.Mem[4])
	}
	// Direct accesses appear in the trace.
	if len(m.Trace) != 3 {
		t.Fatalf("trace = %v", m.Trace)
	}
	m.Reset()
	if err := m.Run([]Instruction{{Op: LDD, Imm: 99}}, 10); err == nil {
		t.Fatal("out-of-range direct address accepted")
	}
}

func TestAssembleModuloAndDirect(t *testing.T) {
	src := `
LDMOD AR0, #100, #8
MULI #-3
LDD #5
ADDD #6
STD #7
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog[0].Op != LDMOD || prog[0].Reg != 0 || prog[0].Imm != 100 || prog[0].Mod != 8 {
		t.Fatalf("LDMOD parsed as %+v", prog[0])
	}
	var lines []string
	for _, in := range prog {
		lines = append(lines, in.String())
	}
	prog2, err := Assemble(strings.Join(lines, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if prog[i] != prog2[i] {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, prog[i], prog2[i])
		}
	}
	for _, bad := range []string{"LDMOD AR0, #1", "LDMOD IR0, #1, #2", "MULI", "LDD x"} {
		if _, err := Assemble(bad); err == nil {
			t.Errorf("Assemble(%q) accepted", bad)
		}
	}
}
