package dspaddr

import (
	"context"
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	res, err := Allocate(PaperExample(), Config{AGU: AGUSpec{Registers: 2, ModifyRange: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualRegisters != 2 || res.Cost != 0 {
		t.Fatalf("paper example: K~=%d cost=%d", res.VirtualRegisters, res.Cost)
	}
	if !strings.Contains(res.Report(), "K~ = 2") {
		t.Error("report malformed")
	}
}

func TestFacadeAllocateBatch(t *testing.T) {
	jobs := []BatchJob{
		{Pattern: PaperExample(), AGU: AGUSpec{Registers: 2, ModifyRange: 1}},
		{Pattern: PaperExample(), AGU: AGUSpec{Registers: 2, ModifyRange: 1}},
		{Pattern: NewPattern(0, 3, 6), AGU: AGUSpec{Registers: 1, ModifyRange: 1}},
	}
	results := AllocateBatch(context.Background(), jobs, EngineOptions{Workers: 4})
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
	}
	if results[0].Result.Cost != 0 || results[1].Result.Cost != 0 {
		t.Fatalf("paper example costs %d/%d, want 0/0", results[0].Result.Cost, results[1].Result.Cost)
	}
	if results[0].Result.Cost != results[1].Result.Cost {
		t.Fatal("identical jobs disagree")
	}
}

func TestFacadeNewEngineStats(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 2})
	defer e.Close()
	job := BatchJob{Pattern: PaperExample(), AGU: AGUSpec{Registers: 2, ModifyRange: 1}}
	e.Run(context.Background(), job)
	res := e.Run(context.Background(), job)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.CacheHit {
		t.Error("second identical job should hit the cache")
	}
	s := e.Stats()
	if s.Jobs != 2 || s.CacheHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFacadeParseAndAllocateLoop(t *testing.T) {
	prog, err := ParseLoop(`
for (i = 2; i <= N; i++) {
    A[i+1]; A[i]; A[i+2]; A[i-1]; A[i+1]; A[i]; A[i-2];
}`, map[string]int{"N": 50})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := AllocateLoop(prog.Loop, Config{AGU: AGUSpec{Registers: 2, ModifyRange: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.TotalCost != 0 {
		t.Fatalf("total cost = %d, want 0", alloc.TotalCost)
	}
}

func TestFacadeEndToEndCodegen(t *testing.T) {
	k, err := KernelByName("fir8")
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := AllocateLoop(k.Loop, Config{AGU: AGUSpec{Registers: 3, ModifyRange: 1}})
	if err != nil {
		t.Fatal(err)
	}
	bases, words := AutoBases(k.Loop)
	opt, err := GenerateOptimized(alloc, bases)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Verify(words); err != nil {
		t.Fatal(err)
	}
	naive, err := GenerateNaive(k.Loop, bases, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := naive.Verify(words); err != nil {
		t.Fatal(err)
	}
	if opt.CodeWords() >= naive.CodeWords() {
		t.Fatalf("optimized %d words, naive %d", opt.CodeWords(), naive.CodeWords())
	}
}

func TestFacadeDOT(t *testing.T) {
	dot, err := DistanceGraphDOT(PaperExample(), 1, "fig1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "a1: A[i+1]") {
		t.Fatalf("DOT malformed:\n%s", dot)
	}
	if _, err := DistanceGraphDOT(Pattern{}, 1, "x"); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

func TestFacadeKernels(t *testing.T) {
	ks := Kernels()
	if len(ks) < 8 {
		t.Fatalf("kernel library too small: %d", len(ks))
	}
	if _, err := KernelByName("definitely-not-a-kernel"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestAssignScalarOffsets(t *testing.T) {
	prog, err := ParseLoop(`for (i = 0; i <= 3; i++) { s = s + c0*A[i] + c1*A[i-1]; }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	layout, cost := AssignScalarOffsets(prog.Scalars)
	if len(layout.Order) != 3 { // s, c0, c1
		t.Fatalf("layout = %v", layout.Order)
	}
	if cost < 0 {
		t.Fatalf("cost = %d", cost)
	}
	if _, zero := AssignScalarOffsets(nil); zero != 0 {
		t.Fatal("empty scalar sequence should cost 0")
	}
}

func TestFacadeAsyncJobs(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 2})
	defer e.Close()
	j := NewJobs(e, JobsOptions{})
	defer j.Close()

	id, err := SubmitJob(j, BatchJob{
		Pattern: PaperExample(),
		AGU:     AGUSpec{Registers: 2, ModifyRange: 1},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	for {
		st, err = JobStatusByID(j, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			break
		}
	}
	if st.State != JobDone {
		t.Fatalf("state %s (%v), want done", st.State, st.Err)
	}
	res, ok := st.Result.(BatchResult)
	if !ok {
		t.Fatalf("result type %T", st.Result)
	}
	if res.Result.Cost != 0 || res.Result.VirtualRegisters != 2 {
		t.Fatalf("paper example allocation off: %+v", res.Result)
	}

	// Loop payloads resolve the same way.
	prog, err := ParseLoop("for (i = 0; i <= 9; i++) { A[i]; A[i+1]; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	loopID, err := j.Submit(BatchLoopJob{Loop: prog.Loop, AGU: AGUSpec{Registers: 1, ModifyRange: 1}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for {
		st, err = JobStatusByID(j, loopID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			break
		}
	}
	if st.State != JobDone {
		t.Fatalf("loop job state %s (%v)", st.State, st.Err)
	}
	if _, ok := st.Result.(BatchLoopResult); !ok {
		t.Fatalf("loop result type %T", st.Result)
	}

	// An unsupported payload fails the job, not the manager.
	badID, err := j.Submit("not a job", 0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		st, err = JobStatusByID(j, badID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			break
		}
	}
	if st.State != JobFailed {
		t.Fatalf("bad payload state %s, want failed", st.State)
	}
	if m := j.Metrics(); m.Submitted != 3 || m.Done != 2 || m.Failed != 1 {
		t.Fatalf("metrics off: %+v", m)
	}
}
