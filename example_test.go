package dspaddr_test

import (
	"fmt"

	"dspaddr"
)

// ExampleAllocate reproduces the paper's Section 2/3 walkthrough: the
// example pattern needs K~ = 2 virtual registers for zero cost; with
// both available the allocation is free.
func ExampleAllocate() {
	res, err := dspaddr.Allocate(dspaddr.PaperExample(), dspaddr.Config{
		AGU: dspaddr.AGUSpec{Registers: 2, ModifyRange: 1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("K~ =", res.VirtualRegisters)
	fmt.Println("cost =", res.Cost)
	// Output:
	// K~ = 2
	// cost = 0
}

// ExampleAllocate_constrained tightens the register constraint to one:
// phase 2 merges the two paths and unit costs appear.
func ExampleAllocate_constrained() {
	res, err := dspaddr.Allocate(dspaddr.PaperExample(), dspaddr.Config{
		AGU: dspaddr.AGUSpec{Registers: 1, ModifyRange: 1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("merged =", res.Merged)
	fmt.Println("registers =", res.Assignment.Registers())
	fmt.Println("cost =", res.Cost)
	// Output:
	// merged = true
	// registers = 1
	// cost = 4
}

// ExampleParseLoop lowers a mini-C loop and inspects its access
// pattern.
func ExampleParseLoop() {
	prog, err := dspaddr.ParseLoop(`
for (i = 2; i <= N; i++) {
    A[i+1]; A[i]; A[i-2];
}`, map[string]int{"N": 10})
	if err != nil {
		panic(err)
	}
	pats, _ := prog.Loop.Patterns()
	fmt.Println(pats[0])
	fmt.Println("iterations:", prog.Loop.Iterations())
	// Output:
	// A: [+1 0 -2] stride 1
	// iterations: 9
}

// ExampleAllocateIndexed shows the index-register extension removing
// the cost of recurring large jumps.
func ExampleAllocateIndexed() {
	pat := dspaddr.NewPattern(0, 5, 0, 5, 0, 5)
	res, err := dspaddr.AllocateIndexed(pat,
		dspaddr.AGUSpec{Registers: 1, ModifyRange: 1},
		dspaddr.IndexedOptions{IndexRegisters: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("base cost =", res.BaseCost)
	fmt.Println("indexed cost =", res.Cost, "values", res.Values)
	// Output:
	// base cost = 5
	// indexed cost = 0 values [5]
}
