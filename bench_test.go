package dspaddr

// One benchmark per experiment artifact (DESIGN.md per-experiment
// index), plus micro-benchmarks of the allocator phases. Run with
//
//	go test -bench=. -benchmem
//
// The Benchmark*/shape checks are deliberately light; the full-size
// sweeps live behind `rcabench`.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dspaddr/internal/codegen"
	"dspaddr/internal/core"
	"dspaddr/internal/distgraph"
	"dspaddr/internal/dspsim"
	"dspaddr/internal/engine"
	"dspaddr/internal/experiments"
	"dspaddr/internal/indexreg"
	"dspaddr/internal/merge"
	"dspaddr/internal/model"
	"dspaddr/internal/offsetassign"
	"dspaddr/internal/pathcover"
	"dspaddr/internal/workload"
)

// BenchmarkFig1GraphModel regenerates Figure 1 (E1): distance graph
// construction plus the minimal path cover of the example loop.
func BenchmarkFig1GraphModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig1()
		if err != nil {
			b.Fatal(err)
		}
		if r.KTilde != 2 {
			b.Fatalf("K~ = %d", r.KTilde)
		}
	}
}

// BenchmarkE2RandomSweep regenerates the Results ¶1 statistical
// analysis (E2) at a benchmark-friendly trial count.
func BenchmarkE2RandomSweep(b *testing.B) {
	p := experiments.DefaultE2Params()
	p.Trials = 10
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE2(p)
		if err != nil {
			b.Fatal(err)
		}
		if r.GrandReduction < 15 {
			b.Fatalf("reduction collapsed: %.1f%%", r.GrandReduction)
		}
	}
}

// BenchmarkE2Cell benchmarks single sweep cells across the paper's
// parameter axes.
func BenchmarkE2Cell(b *testing.B) {
	for _, n := range []int{10, 30, 50} {
		for _, k := range []int{2, 4} {
			b.Run(fmt.Sprintf("N=%d/M=1/K=%d", n, k), func(b *testing.B) {
				p := experiments.E2Params{
					Ns: []int{n}, Ms: []int{1}, Ks: []int{k},
					Trials: 5, Seed: 1, OffsetRange: 8,
				}
				for i := 0; i < b.N; i++ {
					if _, err := experiments.RunE2(p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE3Kernels regenerates the Results ¶2 kernel study (E3),
// one sub-benchmark per library kernel: allocate, generate optimized
// and naive code, verify both on the simulator and execute them.
func BenchmarkE3Kernels(b *testing.B) {
	for _, name := range workload.KernelNames() {
		b.Run(name, func(b *testing.B) {
			p := experiments.DefaultE3Params()
			p.Kernels = []string{name}
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunE3(p)
				if err != nil {
					b.Fatal(err)
				}
				if r.Rows[0].OptCycles >= r.Rows[0].NaiveCycles {
					b.Fatal("optimized code not faster")
				}
			}
		})
	}
}

// BenchmarkA1Bounds regenerates the phase-1 bound-quality ablation.
func BenchmarkA1Bounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunA1([]int{8, 12}, []int{1}, 10, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA2MergeStrategies regenerates the merge-strategy ablation.
func BenchmarkA2MergeStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunA2([]int{10, 16}, 2, 1, 5, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA3WrapObjective regenerates the inter-iteration modelling
// ablation.
func BenchmarkA3WrapObjective(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunA3(4, 1, 5, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA4SOA regenerates the scalar offset-assignment ablation.
func BenchmarkA4SOA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunA4([]int{12, 24}, 6, 5, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the allocator phases ---

func randomPatternB(rng *rand.Rand, n int) model.Pattern {
	return workload.BenchPattern(rng, n)
}

// BenchmarkPhase1MatchingCover measures the polynomial minimum path
// cover (intra-iteration objective).
func BenchmarkPhase1MatchingCover(b *testing.B) {
	for _, n := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			pat := randomPatternB(rand.New(rand.NewSource(int64(n))), n)
			dg, err := distgraph.Build(pat, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pathcover.MinCoverDAG(dg)
			}
		})
	}
}

// BenchmarkPhase1BranchAndBound measures the wrap-aware exact search.
func BenchmarkPhase1BranchAndBound(b *testing.B) {
	for _, n := range []int{10, 20, 30} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			pat := randomPatternB(rand.New(rand.NewSource(int64(n))), n)
			dg, err := distgraph.Build(pat, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pathcover.MinCover(dg, true, nil)
			}
		})
	}
}

// BenchmarkPhase2GreedyMerge measures the paper's merge heuristic.
func BenchmarkPhase2GreedyMerge(b *testing.B) {
	for _, n := range []int{20, 50} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			pat := randomPatternB(rand.New(rand.NewSource(int64(n))), n)
			dg, err := distgraph.Build(pat, 1)
			if err != nil {
				b.Fatal(err)
			}
			cover := pathcover.MinCover(dg, false, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := merge.Reduce(merge.Greedy{}, cover.Paths, pat, 1, false, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGreedyMergeLarge exercises the incremental greedy merge on
// a wide phase-2 workload: ~48 singleton paths (offsets spread far
// beyond the modify range) merged down to 4 registers, 44 rounds. The
// in-package benchmark BenchmarkGreedyIncrementalVsReference
// (internal/merge) compares this exact workload against the retained
// reference implementation.
func BenchmarkGreedyMergeLarge(b *testing.B) {
	pat := workload.WideMergePattern()
	dg, err := distgraph.Build(pat, 1)
	if err != nil {
		b.Fatal(err)
	}
	cover := pathcover.MinCover(dg, false, nil)
	if cover.K() < 40 {
		b.Fatalf("expected a large cover, got %d paths", cover.K())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := merge.Reduce(merge.Greedy{}, cover.Paths, pat, 1, false, 4)
		if err != nil {
			b.Fatal(err)
		}
		if a.Registers() != 4 {
			b.Fatalf("left %d registers", a.Registers())
		}
	}
}

// BenchmarkAllocateEndToEnd measures the whole allocator.
func BenchmarkAllocateEndToEnd(b *testing.B) {
	pat := randomPatternB(rand.New(rand.NewSource(7)), 30)
	cfg := core.Config{AGU: model.AGUSpec{Registers: 4, ModifyRange: 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Allocate(pat, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures simulated instructions per
// second on the FIR kernel.
func BenchmarkSimulatorThroughput(b *testing.B) {
	k, err := workload.KernelByName("fir8")
	if err != nil {
		b.Fatal(err)
	}
	alloc, err := core.AllocateLoop(k.Loop, core.Config{
		AGU: model.AGUSpec{Registers: 3, ModifyRange: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	bases, words := codegen.AutoBases(k.Loop)
	prog, err := codegen.GenerateOptimized(alloc, bases, dspsim.ADD)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Run(words); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSOAHeuristics measures the scalar offset-assignment
// heuristics.
func BenchmarkSOAHeuristics(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	letters := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	seq := make([]string, 200)
	for i := range seq {
		seq[i] = letters[rng.Intn(len(letters))]
	}
	b.Run("liao", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			offsetassign.LiaoSOA(seq)
		}
	})
	b.Run("tie-break", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			offsetassign.TieBreakSOA(seq)
		}
	})
	b.Run("goa-k4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := offsetassign.GOA(seq, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkA5IndexRegisters regenerates the index-register extension
// ablation.
func BenchmarkA5IndexRegisters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunA5([]int{10, 20}, 2, 1, 5, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexedOptimize measures the alternating allocate/re-pick
// loop of the indexed allocator.
func BenchmarkIndexedOptimize(b *testing.B) {
	for _, n := range []int{10, 30} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			pat := randomPatternB(rand.New(rand.NewSource(int64(n))), n)
			spec := model.AGUSpec{Registers: 2, ModifyRange: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := indexreg.Optimize(pat, spec, indexreg.Options{IndexRegisters: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- batch engine benchmarks ---

// BenchmarkEngineBatch measures end-to-end batch throughput on the
// worker pool: each iteration submits a 64-job batch of distinct
// patterns (every job misses the cache).
func BenchmarkEngineBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	jobs := make([]engine.Request, 64)
	for i := range jobs {
		jobs[i] = engine.Request{
			Pattern: randomPatternB(rng, 20),
			AGU:     model.AGUSpec{Registers: 2, ModifyRange: 1},
		}
	}
	e := engine.New(engine.Options{Workers: 8, CacheSize: -1})
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range e.RunBatch(context.Background(), jobs) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

// BenchmarkEngineParallelWarm measures concurrent hit-dominated
// traffic against the sharded cache: 8 goroutines each push the same
// 64-pattern batch through the pool per iteration, everything after
// the warmup answered from cache. This is the shape that serialized on
// the old single cache mutex; it mirrors the engine/parallel baseline
// scenario in BENCH_5.json.
func BenchmarkEngineParallelWarm(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	jobs := make([]engine.Request, 64)
	for i := range jobs {
		jobs[i] = engine.Request{
			Pattern: randomPatternB(rng, 20),
			AGU:     model.AGUSpec{Registers: 2, ModifyRange: 1},
		}
	}
	e := engine.New(engine.Options{Workers: 8})
	defer e.Close()
	for _, res := range e.RunBatch(context.Background(), jobs) {
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, res := range e.RunBatch(context.Background(), jobs) {
					if res.Err != nil {
						b.Error(res.Err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

// BenchmarkEngineCacheHit measures the canonical-pattern cache fast
// path under parallel load: every submission after the first is a hit.
func BenchmarkEngineCacheHit(b *testing.B) {
	e := engine.New(engine.Options{Workers: 8})
	defer e.Close()
	req := engine.Request{
		Pattern: model.PaperExample(),
		AGU:     model.AGUSpec{Registers: 1, ModifyRange: 1},
	}
	if res := e.Run(context.Background(), req); res.Err != nil {
		b.Fatal(res.Err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res := e.Run(context.Background(), req)
			if res.Err != nil {
				b.Error(res.Err)
				return
			}
			if !res.CacheHit {
				b.Error("expected a cache hit")
				return
			}
		}
	})
}

// BenchmarkEngineCacheMissVsHit reports the solve-vs-lookup gap on one
// mid-size pattern: sub-benchmark "miss" disables the cache,
// sub-benchmark "hit" serves from it.
func BenchmarkEngineCacheMissVsHit(b *testing.B) {
	pat := randomPatternB(rand.New(rand.NewSource(5)), 30)
	req := engine.Request{Pattern: pat, AGU: model.AGUSpec{Registers: 2, ModifyRange: 1}}
	b.Run("miss", func(b *testing.B) {
		e := engine.New(engine.Options{Workers: 2, CacheSize: -1})
		defer e.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := e.Run(context.Background(), req); res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		e := engine.New(engine.Options{Workers: 2})
		defer e.Close()
		e.Run(context.Background(), req)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := e.Run(context.Background(), req)
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if !res.CacheHit {
				b.Fatal("expected a cache hit")
			}
		}
	})
}

// BenchmarkA6ModuloAddressing regenerates the circular-buffer
// extension ablation: build, verify and execute both FIR
// implementations.
func BenchmarkA6ModuloAddressing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunA6([]int{4, 16}, 32, 1); err != nil {
			b.Fatal(err)
		}
	}
}
