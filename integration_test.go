package dspaddr

// Whole-pipeline integration tests: every library kernel, parsed from
// mini-C source, allocated under a grid of AGU configurations, lowered
// to code, and executed on the simulator with full address-trace and
// read/write-direction verification. These tests are the repository's
// end-to-end correctness statement.

import (
	"fmt"
	"testing"
)

func TestIntegrationKernelGrid(t *testing.T) {
	for _, kernel := range Kernels() {
		kernel := kernel
		pats, _ := kernel.Loop.Patterns()
		minK := len(pats)
		for _, extra := range []int{0, 1, 3} {
			for _, m := range []int{1, 2} {
				name := fmt.Sprintf("%s/K=%d/M=%d", kernel.Name, minK+extra, m)
				t.Run(name, func(t *testing.T) {
					cfg := Config{AGU: AGUSpec{Registers: minK + extra, ModifyRange: m}}
					alloc, err := AllocateLoop(kernel.Loop, cfg)
					if err != nil {
						t.Fatal(err)
					}
					bases, words := AutoBases(kernel.Loop)
					opt, err := GenerateOptimized(alloc, bases)
					if err != nil {
						t.Fatal(err)
					}
					if err := opt.Verify(words); err != nil {
						t.Fatalf("optimized: %v", err)
					}
					naive, err := GenerateNaive(kernel.Loop, bases, m)
					if err != nil {
						t.Fatal(err)
					}
					if err := naive.Verify(words); err != nil {
						t.Fatalf("naive: %v", err)
					}
					mo, err := opt.Run(words)
					if err != nil {
						t.Fatal(err)
					}
					mn, err := naive.Run(words)
					if err != nil {
						t.Fatal(err)
					}
					if mo.Cycles > mn.Cycles {
						t.Fatalf("optimized %d cycles slower than naive %d", mo.Cycles, mn.Cycles)
					}
				})
			}
		}
	}
}

func TestIntegrationWrapObjectiveGrid(t *testing.T) {
	// The wrap-aware objective must keep every kernel verifiable too.
	for _, kernel := range Kernels() {
		pats, _ := kernel.Loop.Patterns()
		cfg := Config{
			AGU:            AGUSpec{Registers: len(pats) + 2, ModifyRange: 1},
			InterIteration: true,
		}
		alloc, err := AllocateLoop(kernel.Loop, cfg)
		if err != nil {
			t.Fatalf("%s: %v", kernel.Name, err)
		}
		bases, words := AutoBases(kernel.Loop)
		prog, err := GenerateOptimized(alloc, bases)
		if err != nil {
			t.Fatalf("%s: %v", kernel.Name, err)
		}
		if err := prog.Verify(words); err != nil {
			t.Fatalf("%s: %v", kernel.Name, err)
		}
	}
}

func TestIntegrationParseAllocateRoundTrip(t *testing.T) {
	// Kernels carry their own mini-C source; re-parsing it must yield
	// the stored loop.
	for _, kernel := range Kernels() {
		prog, err := ParseLoop(kernel.Source, kernel.Bindings)
		if err != nil {
			t.Fatalf("%s: %v", kernel.Name, err)
		}
		if len(prog.Loop.Accesses) != len(kernel.Loop.Accesses) {
			t.Fatalf("%s: reparse changed access count", kernel.Name)
		}
		for i, a := range prog.Loop.Accesses {
			if a != kernel.Loop.Accesses[i] {
				t.Fatalf("%s: access %d differs after reparse", kernel.Name, i)
			}
		}
	}
}
